// Package isa defines the instruction set executed by the nocs core model.
//
// The ISA is a small RISC-style load/store architecture extended with the
// instructions proposed in §3.1 of "A Case Against (Most) Context Switches"
// (HotOS '21):
//
//	monitor <addr-reg>      arm a watch on a memory address
//	mwait                   block the current ptid until a watched write
//	start <vtid-reg>        enable the ptid mapped to vtid
//	stop  <vtid-reg>        disable the ptid mapped to vtid
//	rpull <vtid>, <lr>, <rr> read remote register rr of a disabled ptid into lr
//	rpush <vtid>, <rr>, <lr> write local register lr into remote register rr
//	invtid <vtid>, <rvtid>  invalidate a cached TDT translation
//
// It also retains the legacy instructions the baseline needs (SYSCALL,
// SYSRET, VMCALL, INT, IRET, HLT, WRMSR) so that conventional
// context-switching kernels can be modeled on the same core.
//
// Kernel and device service routines run through the NATIVE instruction,
// which invokes a registered Go handler and charges its declared cycle cost —
// the standard architecture-simulator pseudo-instruction technique.
package isa

import "fmt"

// Op identifies an instruction.
type Op uint8

// Instruction opcodes.
const (
	NOP Op = iota

	// Integer ALU.
	ADD  // rd = rs1 + rs2
	SUB  // rd = rs1 - rs2
	MUL  // rd = rs1 * rs2
	DIV  // rd = rs1 / rs2 (divide-by-zero raises ExcDivideByZero)
	AND  // rd = rs1 & rs2
	OR   // rd = rs1 | rs2
	XOR  // rd = rs1 ^ rs2
	SHL  // rd = rs1 << (rs2 & 63)
	SHR  // rd = rs1 >> (rs2 & 63) (logical)
	SLT  // rd = 1 if rs1 < rs2 else 0 (signed)
	ADDI // rd = rs1 + imm
	MOVI // rd = imm
	MOV  // rd = rs1

	// Floating point (touching these marks the ptid's state "vector-dirty",
	// growing its architectural state from 272 to 784 bytes, §4).
	FADD // fd = fs1 + fs2
	FMUL // fd = fs1 * fs2
	FMOVI
	FMOV

	// Memory.
	LD // rd = mem[rs1 + imm]
	ST // mem[rs1 + imm] = rs2

	// Control flow.
	JMP // pc = imm
	JAL // rd = pc+1; pc = imm
	JR  // pc = rs1
	BEQ // if rs1 == rs2: pc = imm
	BNE
	BLT
	BGE
	HALT // stop the ptid permanently (program end)

	// Paper §3.1 extensions.
	MONITOR // arm watch on address in rs1 (multiple allowed per ptid)
	MWAIT   // block until a write hits any armed watch
	START   // start ptid mapped to vtid in rs1
	STOP    // stop ptid mapped to vtid in rs1
	RPULL   // rd(local) = remote reg Imm of ptid mapped to vtid in rs1
	RPUSH   // remote reg Imm of ptid mapped to vtid in rs1 = rs2(local)
	INVTID  // invalidate cached translation of vtid rs2 in the TDT of vtid rs1

	// Legacy privileged-transition instructions (baseline machinery).
	SYSCALL // same-thread mode switch into the kernel (expensive, §2)
	SYSRET  // return to user mode
	VMCALL  // guest → hypervisor exit (expensive, §2)
	VMRESUME
	INT  // software interrupt through the IDT, vector = imm
	IRET // return from interrupt context
	WRMSR
	RDMSR
	HLT // halt core until next interrupt (legacy idle)

	// Simulator pseudo-instruction: invoke registered native handler Sym.
	NATIVE

	// Atomic read-modify-write memory ops (synchronization, DESIGN.md §14).
	// Every instruction executes atomically in virtual time, so these are
	// atomic by construction; they exist so lock algorithms can express
	// swap/fetch-add/compare-swap as single instructions the way real
	// hardware does, and so a release store wakes monitor waiters exactly
	// like ST.
	XCHG // rd ↔ mem[rs1 + imm] (swap)
	FAA  // rd = mem[rs1 + imm]; mem[rs1 + imm] += rs2 (fetch-and-add)
	CAS  // if mem[rs1 + imm] == rd: mem[rs1 + imm] = rs2; rd = old value

	numOps // sentinel
)

var opNames = [...]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr", SLT: "slt",
	ADDI: "addi", MOVI: "movi", MOV: "mov",
	FADD: "fadd", FMUL: "fmul", FMOVI: "fmovi", FMOV: "fmov",
	LD: "ld", ST: "st",
	JMP: "jmp", JAL: "jal", JR: "jr", BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	HALT:    "halt",
	MONITOR: "monitor", MWAIT: "mwait", START: "start", STOP: "stop",
	RPULL: "rpull", RPUSH: "rpush", INVTID: "invtid",
	SYSCALL: "syscall", SYSRET: "sysret", VMCALL: "vmcall", VMRESUME: "vmresume",
	INT: "int", IRET: "iret", WRMSR: "wrmsr", RDMSR: "rdmsr", HLT: "hlt",
	NATIVE: "native",
	XCHG:   "xchg", FAA: "faa", CAS: "cas",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the opcode is a defined instruction.
func (o Op) Valid() bool { return o < numOps && (o == NOP || opNames[o] != "") }

// OpByName maps a mnemonic back to its opcode; ok is false for unknown names.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		if n != "" {
			m[n] = Op(op)
		}
	}
	return m
}()

// IsPrivileged reports whether executing the opcode in user mode raises a
// privilege exception (writes an exception descriptor and disables the ptid
// under the nocs model; vectors through the IDT under the legacy model).
func (o Op) IsPrivileged() bool {
	switch o {
	case WRMSR, RDMSR, HLT, IRET, VMRESUME, SYSRET:
		return true
	}
	return false
}

// IsBranch reports whether the opcode may redirect control flow.
func (o Op) IsBranch() bool {
	switch o {
	case JMP, JAL, JR, BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// Latency returns the base execution latency of the opcode in cycles,
// excluding memory-hierarchy time for LD/ST and excluding the architectural
// transition costs of the legacy privileged instructions (those are charged
// by the core's cost model, since they depend on configuration).
func (o Op) Latency() int {
	switch o {
	case MUL:
		return 3
	case DIV:
		return 12
	case FADD, FMOV, FMOVI:
		return 3
	case FMUL:
		return 4
	case LD, ST, XCHG, FAA, CAS:
		return 1 // plus cache hierarchy time
	default:
		return 1
	}
}
