package netstack

import (
	"fmt"
	"sort"

	"nocs/internal/sim"
	"nocs/internal/snapshot"
)

// Checkpoint support (DESIGN.md §13). The stack serializes its RX cursor,
// counters, per-socket ring state (delivered/consumed live in memory and are
// captured by the memory codec; the Go-side mirror here is the authoritative
// delivered count, NACK count, and the blocked flag driving the dynamic
// watch set), and every in-flight delayed doorbell publish. The service
// thread itself — registers, parked-in-mwait state, armed watches — is
// ordinary hardware-thread state captured by the core and monitor codecs.
//
// The stack implements machine.ComponentSnapshotter; attach it with
// m.AttachSnapshotter("netstack", shard, stack) on both the snapshot and the
// restore machine. The restore target must have bound the same ports in the
// same order. SendWithRetry backoffs and the SendAsync outbox pump are
// tracked stack events, so a sender caught mid-backoff checkpoints and
// replays exactly.

// SnapshotState writes the stack's dynamic state.
func (s *Stack) SnapshotState(w *snapshot.W) error {
	w.I64(s.rxHead).I64(s.txSeq)
	w.U64(s.received).U64(s.dropNoSock).U64(s.dropMalform).U64(s.backpressure)
	w.U64(s.sent).U64(s.sendBusy).U64(s.svcFaults)
	w.I64(s.staged).U64(s.txQueued).U64(s.pumpStall)
	w.Len(len(s.outbox))
	for _, p := range s.outbox {
		w.I64s(p)
	}
	w.Len(len(s.order))
	for _, sock := range s.order {
		w.I64(sock.Port).I64(sock.delivered).I64(sock.nacks).I64(sock.drops).Bool(sock.blocked)
	}

	type evRec struct {
		at  sim.Cycles
		seq uint64
		e   *stackEv
	}
	evs := make([]evRec, 0, len(s.live))
	for _, e := range s.live {
		at, seq, ok := s.k.Core().Shard().EventInfo(e.h)
		if !ok {
			return fmt.Errorf("netstack: in-flight doorbell event handle is stale at checkpoint")
		}
		evs = append(evs, evRec{at, seq, e})
	}
	// The live list is swap-removal ordered; serialize in (cycle, sequence)
	// order so equal states give identical bytes.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].seq < evs[j].seq
	})
	w.Len(len(evs))
	for _, r := range evs {
		w.I64(int64(r.at)).U64(r.seq).U8(r.e.kind).I64(int64(r.e.sock)).I64(r.e.val)
		w.I64(r.e.addr).I64(int64(r.e.wait)).I64(int64(r.e.max))
	}
	return nil
}

// RestoreState replaces the stack's dynamic state with the checkpoint's. The
// engine must be mid-restore (the machine restore sequence arranges this).
func (s *Stack) RestoreState(r *snapshot.R) error {
	rxHead, txSeq := r.I64(), r.I64()
	received, dropNoSock, dropMalform, backpressure := r.U64(), r.U64(), r.U64(), r.U64()
	sent, sendBusy, svcFaults := r.U64(), r.U64(), r.U64()
	staged, txQueued, pumpStall := r.I64(), r.U64(), r.U64()
	nOut := r.Len(4)
	outbox := make([][]int64, 0, nOut)
	for i := 0; i < nOut; i++ {
		outbox = append(outbox, r.I64s())
	}
	if len(outbox) == 0 {
		outbox = nil
	}
	nSock := r.Len(33)
	type sockRec struct {
		port, delivered, nacks, drops int64
		blocked                       bool
	}
	socks := make([]sockRec, nSock)
	for i := range socks {
		socks[i] = sockRec{r.I64(), r.I64(), r.I64(), r.I64(), r.Bool()}
	}
	nEv := r.Len(57)
	type evRec struct {
		at   sim.Cycles
		seq  uint64
		kind uint8
		sock int64
		val  int64
		addr int64
		wait sim.Cycles
		max  sim.Cycles
	}
	evs := make([]evRec, nEv)
	for i := range evs {
		evs[i] = evRec{sim.Cycles(r.I64()), r.U64(), r.U8(), r.I64(), r.I64(),
			r.I64(), sim.Cycles(r.I64()), sim.Cycles(r.I64())}
	}
	if err := r.Err(); err != nil {
		return err
	}

	if nSock != len(s.order) {
		return fmt.Errorf("netstack: snapshot has %d sockets, live stack has %d — bind the same ports before restore", nSock, len(s.order))
	}
	for i, rec := range socks {
		if rec.port != s.order[i].Port {
			return fmt.Errorf("netstack: snapshot socket %d is port %d, live stack has port %d", i, rec.port, s.order[i].Port)
		}
	}
	for _, e := range evs {
		if e.kind == evSockRx && (e.sock < 0 || e.sock >= int64(len(s.order))) {
			return fmt.Errorf("netstack: snapshot doorbell event for unknown socket %d", e.sock)
		}
	}

	s.rxHead, s.txSeq = rxHead, txSeq
	s.received, s.dropNoSock, s.dropMalform, s.backpressure = received, dropNoSock, dropMalform, backpressure
	s.sent, s.sendBusy, s.svcFaults = sent, sendBusy, svcFaults
	s.staged, s.txQueued, s.pumpStall = staged, txQueued, pumpStall
	s.outbox = outbox
	for i, rec := range socks {
		sock := s.order[i]
		sock.delivered, sock.nacks, sock.drops, sock.blocked = rec.delivered, rec.nacks, rec.drops, rec.blocked
	}
	s.live = s.live[:0]
	sh := s.k.Core().Shard()
	for _, rec := range evs {
		if int(rec.kind) >= len(stackEvNames) {
			return fmt.Errorf("netstack: snapshot event has unknown kind %d", rec.kind)
		}
		e := &stackEv{st: s, idx: len(s.live), kind: rec.kind, sock: int(rec.sock),
			val: rec.val, addr: rec.addr, wait: rec.wait, max: rec.max}
		e.h = sh.RestoreEvent(rec.at, rec.seq, stackEvNames[rec.kind], e)
		s.live = append(s.live, e)
	}
	return nil
}

// LiveHandles lists the stack's queued events for the engine's claimed set.
func (s *Stack) LiveHandles() []sim.Handle {
	hs := make([]sim.Handle, 0, len(s.live))
	for _, e := range s.live {
		hs = append(hs, e.h)
	}
	return hs
}
