package netstack

import (
	"bytes"
	"fmt"
	"testing"

	"nocs/internal/asm"
	"nocs/internal/device"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

// snapRig builds a machine with a Nocs kernel, a NIC, a stack with two bound
// sockets, and an app thread parked on socket 80's doorbell, then attaches
// the kernel and stack as machine snapshot components. Every rig built by
// this helper is identical, so a snapshot of one restores into another.
func snapRig(t *testing.T) (*machine.Machine, *device.NIC, *Stack, *Socket, *Socket) {
	t.Helper()
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x100000, BufBase: 0x200000,
		TailAddr: 0x300000, HeadAddr: 0x300008,
		TXRingBase: 0x310000, TXDoorbell: 0x9100_0000, TXCompAddr: 0x320000,
	}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(k, nic, Config{
		SocketBase: 0x500000, BufBase: 0x580000, SendMailbox: 0x5F0000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s80, err := st.Bind(80)
	if err != nil {
		t.Fatal(err)
	}
	s443, err := st.Bind(443)
	if err != nil {
		t.Fatal(err)
	}
	app := asm.MustAssemble("app", `
main:
	monitor r1      ; r1 = socket doorbell
	mwait
	ld r2, [r1+0]   ; delivered count
	halt
`)
	if err := m.Core(0).BindProgram(0, app, "main"); err != nil {
		t.Fatal(err)
	}
	m.Core(0).Threads().Context(0).Regs.GPR[1] = s80.DoorbellAddr()
	m.Core(0).BootStart(0)
	m.AttachSnapshotter("nocs", 0, k)
	m.AttachSnapshotter("netstack", 0, st)
	m.Run(0) // park the stack service and the app
	return m, nic, st, s80, s443
}

// stackScript is a deterministic delivery schedule: a packet every 1000
// cycles, alternating ports, with a burst at 5000 so a checkpoint probed
// just after it lands mid-pipeline.
type stackDelivery struct {
	at  sim.Cycles
	pkt []int64
}

func stackScript() []stackDelivery {
	var sc []stackDelivery
	for i := 1; i <= 10; i++ {
		port := int64(80)
		if i%2 == 0 {
			port = 443
		}
		sc = append(sc, stackDelivery{sim.Cycles(i * 1000), []int64{port, int64(i), int64(100 + i)}})
	}
	// Burst: three back-to-back packets at the checkpoint anchor.
	sc = append(sc,
		stackDelivery{5000, []int64{80, 50, 1}},
		stackDelivery{5000, []int64{443, 51, 2}},
		stackDelivery{5000, []int64{80, 52, 3}},
	)
	return sc
}

// playStack replays script entries with from < at <= to against the machine,
// then runs to the deadline. Stopping points never change simulated state,
// so any two rigs fed the same script through the same cycle agree exactly.
func playStack(m *machine.Machine, nic *device.NIC, from, to sim.Cycles) {
	for _, d := range stackScript() {
		if d.at <= from || d.at > to {
			continue
		}
		m.RunUntil(d.at)
		nic.Deliver(d.pkt)
	}
	m.RunUntil(to)
}

func stackFingerprint(m *machine.Machine, st *Stack, s80, s443 *Socket) string {
	ctx := m.Core(0).Threads().Context(0)
	return fmt.Sprintf("now=%d rx=%d nosock=%d malform=%d bp=%d sent=%d busy=%d faults=%d rxHead=%d txSeq=%d "+
		"s80={d=%d p=%d n=%d blk=%v} s443={d=%d p=%d n=%d blk=%v} app={st=%v r2=%d} db=%d/%d",
		m.Now(), st.received, st.dropNoSock, st.dropMalform, st.backpressure,
		st.sent, st.sendBusy, st.svcFaults, st.rxHead, st.txSeq,
		s80.delivered, s80.Pending(), s80.nacks, s80.blocked,
		s443.delivered, s443.Pending(), s443.nacks, s443.blocked,
		ctx.State, ctx.Regs.GPR[2],
		m.Core(0).ReadWord(s80.DoorbellAddr()), m.Core(0).ReadWord(s443.DoorbellAddr()))
}

// TestStackSnapshotRoundTripInMachine checkpoints a machine mid-burst —
// with the stack's delayed doorbell publishes still in flight — restores it
// into an identically constructed machine, and requires the restored run to
// finish in exactly the same state as the straight-through run.
func TestStackSnapshotRoundTripInMachine(t *testing.T) {
	const horizon = 14_000

	// Reference: straight through.
	mA, nicA, stA, a80, a443 := snapRig(t)
	playStack(mA, nicA, 0, horizon)
	want := stackFingerprint(mA, stA, a80, a443)

	// Checkpointed run: play to the burst, then probe forward one cycle at
	// a time until a delayed doorbell publish is in flight.
	mB, nicB, stB, b80, b443 := snapRig(t)
	playStack(mB, nicB, 0, 5000)
	cp := sim.Cycles(5000)
	for len(stB.live) == 0 && cp < 6000 {
		cp++
		mB.RunUntil(cp)
	}
	if len(stB.live) == 0 {
		t.Fatal("no in-flight doorbell publish found after the burst; checkpoint would not exercise stack events")
	}
	nLive := len(stB.live)
	var buf bytes.Buffer
	if err := mB.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	playStack(mB, nicB, cp, horizon)
	if got := stackFingerprint(mB, stB, b80, b443); got != want {
		t.Fatalf("checkpointed run diverged from reference:\n got %s\nwant %s", got, want)
	}

	// Restore into a fresh, identically built rig and continue.
	mC, nicC, stC, c80, c443 := snapRig(t)
	if err := mC.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(stC.live) != nLive {
		t.Fatalf("restored stack has %d live events, snapshot had %d", len(stC.live), nLive)
	}
	// Re-snapshot immediately: the bytes must be identical.
	var buf2 bytes.Buffer
	if err := mC.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("restore+snapshot is not byte-identical: %d vs %d bytes", buf.Len(), buf2.Len())
	}
	playStack(mC, nicC, cp, horizon)
	if got := stackFingerprint(mC, stC, c80, c443); got != want {
		t.Fatalf("restored run diverged from reference:\n got %s\nwant %s", got, want)
	}
}

// TestStackRestoreValidation: restoring into a stack with different ports
// bound must fail with a descriptive error, not corrupt state.
func TestStackRestoreValidation(t *testing.T) {
	mB, nicB, _, _, _ := snapRig(t)
	playStack(mB, nicB, 0, 5000)
	var buf bytes.Buffer
	if err := mB.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Same shape, but port 443 becomes 9443.
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x100000, BufBase: 0x200000,
		TailAddr: 0x300000, HeadAddr: 0x300008,
		TXRingBase: 0x310000, TXDoorbell: 0x9100_0000, TXCompAddr: 0x320000,
	}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(k, nic, Config{
		SocketBase: 0x500000, BufBase: 0x580000, SendMailbox: 0x5F0000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Bind(80); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Bind(9443); err != nil {
		t.Fatal(err)
	}
	app := asm.MustAssemble("app", `
main:
	halt
`)
	if err := m.Core(0).BindProgram(0, app, "main"); err != nil {
		t.Fatal(err)
	}
	m.Core(0).BootStart(0)
	m.AttachSnapshotter("nocs", 0, k)
	m.AttachSnapshotter("netstack", 0, st)
	m.Run(0)

	err = m.Restore(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("restore with mismatched ports succeeded")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("port")) {
		t.Fatalf("error does not mention the port mismatch: %v", err)
	}
}
