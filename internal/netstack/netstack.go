// Package netstack implements a small network stack as a microkernel-style
// service — the architecture the paper attributes to TAS and Snap (§2:
// "I/O-intensive services, which have so far resorted to using dedicated
// cores (TAS, Snap)") but running on a parked hardware thread instead of a
// polling core.
//
// The stack is one service thread that watches the NIC's RX tail and a send
// mailbox. Packets are word sequences:
//
//	word 0: destination port
//	word 1: source port
//	word 2+: payload
//
// Received packets are demultiplexed by destination port into per-socket
// receive rings in memory; each socket has a doorbell word that the stack
// bumps after enqueueing, so applications block on their own socket with
// monitor/mwait (or Socket.Recv from Go) and wake per delivery. Sends go
// out through the NIC's TX descriptor ring.
package netstack

import (
	"fmt"

	"nocs/internal/device"
	"nocs/internal/hwthread"
	"nocs/internal/kernel"
	"nocs/internal/sim"
)

// Per-socket receive ring layout at sock.base:
//
//	+0:            doorbell (count of packets ever delivered; monitorable)
//	+8:            consumer count (application publishes)
//	+16 + 16*i:    slot i: payload address, payload words
const (
	sockDoorbell  = 0
	sockConsumed  = 8
	sockSlots     = 16
	sockSlotBytes = 16
)

// Config lays out the stack's memory.
type Config struct {
	// SocketBase is where per-socket rings are allocated (0x400 bytes each).
	SocketBase int64
	// BufBase is where received payloads are copied (one buffer per ring
	// slot per socket).
	BufBase int64
	// SendMailbox is the mailbox the stack watches for transmit requests.
	SendMailbox int64
	// RingEntries is the per-socket receive ring size (default 16).
	RingEntries int
	// PerPacket is the protocol-processing cost (default 600 cycles).
	PerPacket sim.Cycles
}

func (c *Config) setDefaults() {
	if c.RingEntries == 0 {
		c.RingEntries = 16
	}
	if c.PerPacket == 0 {
		c.PerPacket = 600
	}
}

// Stack is the network-stack service.
type Stack struct {
	cfg Config
	k   *kernel.Nocs
	nic *device.NIC

	sockets  map[int64]*Socket // port -> socket
	rxHead   int64
	received uint64
	dropped  uint64 // no socket bound / ring full
	sent     uint64
	txSeq    int64
	ptid     hwthread.PTID
}

// Socket is one bound port's receive ring.
type Socket struct {
	Port int64
	base int64
	st   *Stack
	idx  int
	// delivered is the stack's authoritative count; the doorbell word in
	// memory trails it by the in-flight processing time.
	delivered int64
}

// New spawns the stack service over the given NIC. The NIC must have its
// transmit side configured (TXDoorbell etc.) for Send to work.
func New(k *kernel.Nocs, nic *device.NIC, cfg Config) (*Stack, error) {
	cfg.setDefaults()
	s := &Stack{cfg: cfg, k: k, nic: nic, sockets: make(map[int64]*Socket)}
	watch := func() []int64 {
		return []int64{nic.TailAddr(), cfg.SendMailbox}
	}
	p, err := k.SpawnService("netstack", watch, func(t *hwthread.Context) sim.Cycles {
		var cost sim.Cycles
		cost += s.drainRX()
		cost += s.drainSend()
		return cost
	})
	if err != nil {
		return nil, err
	}
	s.ptid = p
	return s, nil
}

// PTID returns the stack's hardware thread.
func (s *Stack) PTID() hwthread.PTID { return s.ptid }

// Bind allocates a socket on port. Binding a bound port fails.
func (s *Stack) Bind(port int64) (*Socket, error) {
	if _, dup := s.sockets[port]; dup {
		return nil, fmt.Errorf("netstack: port %d already bound", port)
	}
	idx := len(s.sockets)
	sock := &Socket{
		Port: port,
		base: s.cfg.SocketBase + int64(idx)*0x400,
		st:   s,
		idx:  idx,
	}
	s.sockets[port] = sock
	return sock, nil
}

// drainRX demuxes new NIC packets into socket rings.
func (s *Stack) drainRX() sim.Cycles {
	c := s.k.Core()
	tail := c.ReadWord(s.nic.TailAddr())
	var cost sim.Cycles
	for ; s.rxHead < tail; s.rxHead++ {
		bufAddr, length, ready := s.nic.ReadDesc(s.rxHead)
		if !ready || length < 2 {
			s.dropped++
			continue
		}
		cost += s.cfg.PerPacket
		dst := c.ReadWord(bufAddr)
		sock, ok := s.sockets[dst]
		if !ok {
			s.dropped++
			continue
		}
		consumed := c.ReadWord(sock.base + sockConsumed)
		if sock.delivered-consumed >= int64(s.cfg.RingEntries) {
			s.dropped++
			continue
		}
		slot := sock.delivered % int64(s.cfg.RingEntries)
		// Copy the payload into the socket's buffer area.
		dstBuf := s.cfg.BufBase + (int64(sock.idx)*int64(s.cfg.RingEntries)+slot)*256
		for i := int64(0); i < length; i++ {
			c.WriteWord(dstBuf+i*8, c.ReadWord(bufAddr+i*8))
		}
		se := sock.base + sockSlots + slot*sockSlotBytes
		c.WriteWord(se, dstBuf)
		c.WriteWord(se+8, length)
		// Doorbell last: monitor waiters see a complete slot.
		sock.delivered++
		at := cost
		db := sock.delivered
		c.Engine().After(at, "sock-rx", func() {
			c.WriteWord(sock.base+sockDoorbell, db)
		})
		s.received++
	}
	// Publish NIC head for flow control.
	if headAddr := s.nic.Config().HeadAddr; headAddr != 0 && tail != s.rxHead {
		c.WriteWord(headAddr, s.rxHead)
	} else if headAddr != 0 {
		c.WriteWord(headAddr, tail)
	}
	return cost
}

// Send mailbox layout at cfg.SendMailbox:
//
//	+0:  status (1 = posted)
//	+8:  source payload address
//	+16: payload words
const (
	sendStatus = 0
	sendAddr   = 8
	sendLen    = 16
)

// drainSend pushes one posted send request into the NIC TX ring.
func (s *Stack) drainSend() sim.Cycles {
	c := s.k.Core()
	if c.ReadWord(s.cfg.SendMailbox+sendStatus) != 1 {
		return 0
	}
	addr := c.ReadWord(s.cfg.SendMailbox + sendAddr)
	length := c.ReadWord(s.cfg.SendMailbox + sendLen)
	c.WriteWord(s.cfg.SendMailbox+sendStatus, 0)
	s.nic.WriteTXDesc(c.Mem(), s.txSeq, addr, length)
	s.txSeq++
	cost := s.cfg.PerPacket/2 + c.AccessCost(s.nic.Config().TXDoorbell)
	seq := s.txSeq
	c.Engine().After(cost, "tx-doorbell", func() {
		c.WriteWord(s.nic.Config().TXDoorbell, seq)
	})
	s.sent++
	return cost
}

// Send posts a transmit request (Go-side helper; applications in assembly
// write the same mailbox words with ST instructions).
func (s *Stack) Send(payloadAddr, words int64) {
	c := s.k.Core()
	c.WriteWord(s.cfg.SendMailbox+sendAddr, payloadAddr)
	c.WriteWord(s.cfg.SendMailbox+sendLen, words)
	c.WriteWord(s.cfg.SendMailbox+sendStatus, 1)
}

// Stats returns (received, dropped, sent).
func (s *Stack) Stats() (received, dropped, sent uint64) {
	return s.received, s.dropped, s.sent
}

// DoorbellAddr returns the socket's monitorable delivery counter address —
// what an application thread arms monitor on.
func (sk *Socket) DoorbellAddr() int64 { return sk.base + sockDoorbell }

// Pending reports packets delivered but not yet consumed.
func (sk *Socket) Pending() int64 {
	c := sk.st.k.Core()
	return c.ReadWord(sk.base+sockDoorbell) - c.ReadWord(sk.base+sockConsumed)
}

// Recv pops the next packet (Go-side helper). ok is false when empty.
func (sk *Socket) Recv() (payload []int64, ok bool) {
	c := sk.st.k.Core()
	delivered := c.ReadWord(sk.base + sockDoorbell)
	consumed := c.ReadWord(sk.base + sockConsumed)
	if consumed >= delivered {
		return nil, false
	}
	slot := consumed % int64(sk.st.cfg.RingEntries)
	se := sk.base + sockSlots + slot*sockSlotBytes
	buf := c.ReadWord(se)
	length := c.ReadWord(se + 8)
	payload = make([]int64, length)
	for i := range payload {
		payload[i] = c.ReadWord(buf + int64(i)*8)
	}
	c.WriteWord(sk.base+sockConsumed, consumed+1)
	return payload, true
}
