// Package netstack implements a small network stack as a microkernel-style
// service — the architecture the paper attributes to TAS and Snap (§2:
// "I/O-intensive services, which have so far resorted to using dedicated
// cores (TAS, Snap)") but running on a parked hardware thread instead of a
// polling core.
//
// The stack is one service thread that watches the NIC's RX tail and a send
// mailbox. Packets are word sequences:
//
//	word 0: destination port
//	word 1: source port
//	word 2+: payload
//
// Received packets are demultiplexed by destination port into per-socket
// receive rings in memory; each socket has a doorbell word that the stack
// bumps after enqueueing, so applications block on their own socket with
// monitor/mwait (or Socket.Recv from Go) and wake per delivery. Sends go
// out through the NIC's TX descriptor ring.
package netstack

import (
	"fmt"

	"nocs/internal/device"
	"nocs/internal/faultinject"
	"nocs/internal/hwthread"
	"nocs/internal/kernel"
	"nocs/internal/sim"
)

// Per-socket receive ring layout at sock.base (0x400 bytes per socket):
//
//	+0:            doorbell (count of packets ever delivered; monitorable)
//	+8:            consumer count (application publishes)
//	+16 + 16*i:    slot i: payload address, payload words
//	+0x3F8:        NACK/backpressure word (count of ring-full stalls; the
//	               stack bumps it instead of dropping, so senders and
//	               debuggers can observe backpressure; monitorable)
const (
	sockDoorbell  = 0
	sockConsumed  = 8
	sockSlots     = 16
	sockSlotBytes = 16
	sockNack      = 0x3F8
)

// Config lays out the stack's memory.
type Config struct {
	// SocketBase is where per-socket rings are allocated (0x400 bytes each).
	SocketBase int64
	// BufBase is where received payloads are copied (one buffer per ring
	// slot per socket).
	BufBase int64
	// SendMailbox is the mailbox the stack watches for transmit requests.
	SendMailbox int64
	// RingEntries is the per-socket receive ring size (default 16).
	RingEntries int
	// PerPacket is the protocol-processing cost (default 600 cycles).
	PerPacket sim.Cycles
	// TXStageBase, when nonzero, enables the SendAsync outbox: queued
	// payloads are staged here (TXStageEntries slots of 256 bytes) as they
	// are posted, and the slot is not reused until the NIC has transmitted
	// it.
	TXStageBase int64
	// TXStageEntries is the staging-ring size (default 64).
	TXStageEntries int
}

func (c *Config) setDefaults() {
	if c.RingEntries == 0 {
		c.RingEntries = 16
	}
	if c.PerPacket == 0 {
		c.PerPacket = 600
	}
	if c.TXStageEntries == 0 {
		c.TXStageEntries = 64
	}
}

// Stack is the network-stack service.
type Stack struct {
	cfg Config
	k   *kernel.Nocs
	nic *device.NIC
	inj *faultinject.Injector

	sockets map[int64]*Socket // port -> socket
	order   []*Socket         // bind order, for deterministic watch sets
	rxHead  int64

	received     uint64
	dropNoSock   uint64 // no socket bound for the destination port
	dropMalform  uint64 // descriptor not ready / runt packet
	backpressure uint64 // ring-full stalls (packets held, not dropped)
	sent         uint64
	sendBusy     uint64 // Send refused: mailbox still occupied
	svcFaults    uint64 // injected mid-packet thread faults absorbed
	txSeq        int64
	ptid         hwthread.PTID

	// SendAsync outbox: payloads accepted but not yet staged and posted.
	outbox    [][]int64
	staged    int64  // payloads staged-and-posted so far (stage slot cursor)
	txQueued  uint64 // SendAsync payloads ever accepted
	pumpStall uint64 // pump passes that found the stage ring full

	// live tracks the in-flight delayed doorbell publishes, send retries,
	// and outbox pump, so a machine checkpoint can claim and re-create them
	// (DESIGN.md §13).
	live []*stackEv
}

// Event kinds for stackEv.
const (
	evSockRx     = uint8(0) // delayed socket doorbell publish
	evTxDoorbell = uint8(1) // delayed NIC TX doorbell ring
	evSendRetry  = uint8(2) // SendWithRetry backoff attempt
	evTxPump     = uint8(3) // SendAsync outbox pump
)

var stackEvNames = [...]string{"sock-rx", "tx-doorbell", "send-retry", "tx-pump"}

// stackEv is a checkpointable in-flight stack event: the delayed doorbell
// publishes, send-retry backoffs, and the outbox pump that used to be ad-hoc
// closures. Each live event knows its slot in the stack's live list and
// unlinks itself when it fires.
type stackEv struct {
	st   *Stack
	idx  int
	kind uint8
	sock int        // evSockRx: index into st.order
	val  int64      // doorbell count / tx sequence / retry payload words
	addr int64      // evSendRetry: payload address
	wait sim.Cycles // evSendRetry, evTxPump: current backoff spacing
	max  sim.Cycles // evSendRetry: backoff cap
	h    sim.Handle
}

func (e *stackEv) OnEvent() {
	c := e.st.k.Core()
	switch e.kind {
	case evSockRx:
		c.WriteWord(e.st.order[e.sock].base+sockDoorbell, e.val)
	case evTxDoorbell:
		c.WriteWord(e.st.nic.Config().TXDoorbell, e.val)
	}
	e.st.unlink(e)
	switch e.kind {
	case evSendRetry:
		if !e.st.Send(e.addr, e.val) {
			next := e.wait * 2
			if next > e.max {
				next = e.max
			}
			e.st.scheduleRetry(e.addr, e.val, e.wait, next, e.max)
		}
	case evTxPump:
		e.st.pumpTick(e.wait)
	}
}

func (s *Stack) unlink(e *stackEv) {
	last := len(s.live) - 1
	s.live[e.idx] = s.live[last]
	s.live[e.idx].idx = e.idx
	s.live = s.live[:last]
}

func (s *Stack) scheduleEv(kind uint8, sock int, val int64, after sim.Cycles) {
	e := &stackEv{st: s, idx: len(s.live), kind: kind, sock: sock, val: val}
	e.h = s.k.Core().Shard().AfterCallback(after, stackEvNames[kind], e)
	s.live = append(s.live, e)
}

// scheduleRetry queues a send-retry attempt `delay` cycles out; when it fires
// and the mailbox is still busy it reschedules itself at `next`, doubling up
// to `max`.
func (s *Stack) scheduleRetry(addr, words int64, delay, next, max sim.Cycles) {
	e := &stackEv{st: s, idx: len(s.live), kind: evSendRetry,
		val: words, addr: addr, wait: next, max: max}
	e.h = s.k.Core().Shard().AfterCallback(delay, stackEvNames[evSendRetry], e)
	s.live = append(s.live, e)
}

// schedulePump queues an outbox pump pass `delay` cycles out carrying its
// current backoff spacing.
func (s *Stack) schedulePump(delay sim.Cycles) {
	e := &stackEv{st: s, idx: len(s.live), kind: evTxPump, wait: delay}
	e.h = s.k.Core().Shard().AfterCallback(delay, stackEvNames[evTxPump], e)
	s.live = append(s.live, e)
}

func (s *Stack) pumpLive() bool {
	for _, e := range s.live {
		if e.kind == evTxPump {
			return true
		}
	}
	return false
}

// Socket is one bound port's receive ring.
type Socket struct {
	Port int64
	base int64
	st   *Stack
	idx  int
	// delivered is the stack's authoritative count; the doorbell word in
	// memory trails it by the in-flight processing time.
	delivered int64
	// nacks counts ring-full backpressure events on this socket; mirrored
	// to the sockNack word in memory.
	nacks int64
	// drops counts packets addressed to this socket that were lost (none,
	// since backpressure replaced ring-full drops; kept for accounting
	// audits: received + drops must equal what the NIC handed us).
	drops int64
	// blocked marks the ring full: the stack stalls and watches the
	// consumer count until the application catches up.
	blocked bool
}

// New spawns the stack service over the given NIC. The NIC must have its
// transmit side configured (TXDoorbell etc.) for Send to work.
func New(k *kernel.Nocs, nic *device.NIC, cfg Config) (*Stack, error) {
	cfg.setDefaults()
	s := &Stack{cfg: cfg, k: k, nic: nic, sockets: make(map[int64]*Socket)}
	s.inj = k.Core().FaultInjector()
	watch := func() []int64 {
		addrs := []int64{nic.TailAddr(), cfg.SendMailbox}
		// While a ring is full the stack stalls; watching the blocked
		// socket's consumer count wakes it the moment the application
		// catches up. The bind-order slice keeps the set deterministic.
		for _, sock := range s.order {
			if sock.blocked {
				addrs = append(addrs, sock.base+sockConsumed)
			}
		}
		return addrs
	}
	p, err := k.SpawnService("netstack", watch, func(t *hwthread.Context) sim.Cycles {
		var cost sim.Cycles
		cost += s.drainRX()
		cost += s.drainSend()
		return cost
	})
	if err != nil {
		return nil, err
	}
	s.ptid = p
	return s, nil
}

// PTID returns the stack's hardware thread.
func (s *Stack) PTID() hwthread.PTID { return s.ptid }

// Bind allocates a socket on port. Binding a bound port fails.
func (s *Stack) Bind(port int64) (*Socket, error) {
	if _, dup := s.sockets[port]; dup {
		return nil, fmt.Errorf("netstack: port %d already bound", port)
	}
	idx := len(s.sockets)
	sock := &Socket{
		Port: port,
		base: s.cfg.SocketBase + int64(idx)*0x400,
		st:   s,
		idx:  idx,
	}
	s.sockets[port] = sock
	s.order = append(s.order, sock)
	return sock, nil
}

// drainRX demuxes new NIC packets into socket rings. A full socket ring no
// longer drops: the stack parks the undelivered packet in the NIC ring
// (rxHead stalls, so the NIC's own flow control sees the stall too), bumps
// the socket's NACK word, and watches the consumer count so it resumes the
// moment the application catches up. Every accepted packet is therefore
// either delivered or still queued — never silently lost.
func (s *Stack) drainRX() sim.Cycles {
	c := s.k.Core()
	tail := c.ReadWord(s.nic.TailAddr())
	var cost sim.Cycles
	for ; s.rxHead < tail; s.rxHead++ {
		bufAddr, length, ready := s.nic.ReadDesc(s.rxHead)
		if !ready || length < 2 {
			s.dropMalform++
			continue
		}
		cost += s.cfg.PerPacket
		dst := c.ReadWord(bufAddr)
		sock, ok := s.sockets[dst]
		if !ok {
			s.dropNoSock++
			continue
		}
		consumed := c.ReadWord(sock.base + sockConsumed)
		if sock.delivered-consumed >= int64(s.cfg.RingEntries) {
			// Ring full: backpressure instead of drop. The PerPacket cost
			// charged above is refunded — the packet was not processed.
			cost -= s.cfg.PerPacket
			if !sock.blocked {
				sock.blocked = true
				sock.nacks++
				s.backpressure++
				c.WriteWord(sock.base+sockNack, sock.nacks)
			}
			break
		}
		sock.blocked = false
		if pen, ok := s.inj.RequestFault(); ok {
			// Injected mid-packet thread fault: the service absorbs it by
			// redoing the protocol processing after the fault penalty.
			s.svcFaults++
			cost += pen + s.cfg.PerPacket
		}
		slot := sock.delivered % int64(s.cfg.RingEntries)
		// Copy the payload into the socket's buffer area.
		dstBuf := s.cfg.BufBase + (int64(sock.idx)*int64(s.cfg.RingEntries)+slot)*256
		for i := int64(0); i < length; i++ {
			c.WriteWord(dstBuf+i*8, c.ReadWord(bufAddr+i*8))
		}
		se := sock.base + sockSlots + slot*sockSlotBytes
		c.WriteWord(se, dstBuf)
		c.WriteWord(se+8, length)
		// Doorbell last: monitor waiters see a complete slot.
		sock.delivered++
		s.scheduleEv(evSockRx, sock.idx, sock.delivered, cost)
		s.received++
	}
	// Publish NIC head for flow control.
	if headAddr := s.nic.Config().HeadAddr; headAddr != 0 && tail != s.rxHead {
		c.WriteWord(headAddr, s.rxHead)
	} else if headAddr != 0 {
		c.WriteWord(headAddr, tail)
	}
	return cost
}

// Send mailbox layout at cfg.SendMailbox:
//
//	+0:  status (1 = posted)
//	+8:  source payload address
//	+16: payload words
const (
	sendStatus = 0
	sendAddr   = 8
	sendLen    = 16
)

// drainSend pushes one posted send request into the NIC TX ring.
func (s *Stack) drainSend() sim.Cycles {
	c := s.k.Core()
	if c.ReadWord(s.cfg.SendMailbox+sendStatus) != 1 {
		return 0
	}
	addr := c.ReadWord(s.cfg.SendMailbox + sendAddr)
	length := c.ReadWord(s.cfg.SendMailbox + sendLen)
	c.WriteWord(s.cfg.SendMailbox+sendStatus, 0)
	s.nic.WriteTXDesc(c.Mem(), s.txSeq, addr, length)
	s.txSeq++
	cost := s.cfg.PerPacket/2 + c.AccessCost(s.nic.Config().TXDoorbell)
	s.scheduleEv(evTxDoorbell, 0, s.txSeq, cost)
	s.sent++
	return cost
}

// Send posts a transmit request (Go-side helper; applications in assembly
// write the same mailbox words with ST instructions). It reports whether the
// mailbox was free: a false return means a previous request is still
// pending, and blindly overwriting it would have silently lost that packet.
// Use SendWithRetry for back-off-and-retry semantics.
func (s *Stack) Send(payloadAddr, words int64) bool {
	c := s.k.Core()
	if c.ReadWord(s.cfg.SendMailbox+sendStatus) != 0 {
		s.sendBusy++
		return false
	}
	c.WriteWord(s.cfg.SendMailbox+sendAddr, payloadAddr)
	c.WriteWord(s.cfg.SendMailbox+sendLen, words)
	c.WriteWord(s.cfg.SendMailbox+sendStatus, 1)
	return true
}

// SendWithRetry posts a transmit request, retrying with doubling backoff
// (capped at 8x the initial spacing) while the mailbox is occupied. The
// stack always eventually clears the mailbox, so the post always eventually
// lands — backpressure delays the sender instead of losing the packet. The
// pending retry is a tracked stack event, so a machine checkpoint taken
// while a sender is backing off restores and replays it exactly.
func (s *Stack) SendWithRetry(payloadAddr, words int64, backoff sim.Cycles) {
	if backoff < 1 {
		backoff = 1
	}
	max := backoff * 8
	if s.Send(payloadAddr, words) {
		return
	}
	next := backoff * 2
	if next > max {
		next = max
	}
	s.scheduleRetry(payloadAddr, words, backoff, next, max)
}

// SendAsync queues a payload for transmission. Unlike Send, it never refuses
// and never overwrites: payloads wait in the stack's outbox, and a
// checkpointable pump stages each one into the TX staging ring (slots are
// reused only after the NIC transmits them) and posts it to the mailbox,
// backing off with the SendWithRetry doubling schedule while the mailbox is
// busy. FIFO order is preserved. Requires Config.TXStageBase.
func (s *Stack) SendAsync(payload []int64) {
	if s.cfg.TXStageBase == 0 {
		panic("netstack: SendAsync requires Config.TXStageBase")
	}
	s.txQueued++
	s.outbox = append(s.outbox, payload)
	// Fast path: nothing ahead of us and the mailbox is free — post now.
	if len(s.outbox) == 1 && !s.pumpLive() {
		if s.tryPost() {
			return
		}
		s.schedulePump(s.pumpSpacing())
	}
}

// TxQueue reports (payloads accepted by SendAsync, still waiting in the
// outbox, pump passes stalled on a full stage ring).
func (s *Stack) TxQueue() (queued uint64, backlog int, stageStalls uint64) {
	return s.txQueued, len(s.outbox), s.pumpStall
}

// pumpSpacing is the gap between successful pump posts — a quarter of the
// per-packet protocol cost, so the outbox drains faster than the stack can
// consume and the mailbox (not the pump) is the limiter.
func (s *Stack) pumpSpacing() sim.Cycles {
	if sp := s.cfg.PerPacket / 4; sp > 1 {
		return sp
	}
	return 1
}

// pumpTick is one outbox pump pass. wait is the spacing that scheduled it;
// on a busy mailbox the next pass doubles it (capped at 8x base), and any
// success resets to base.
func (s *Stack) pumpTick(wait sim.Cycles) {
	if len(s.outbox) == 0 {
		return
	}
	if s.tryPost() {
		if len(s.outbox) > 0 {
			s.schedulePump(s.pumpSpacing())
		}
		return
	}
	next := wait * 2
	if max := s.pumpSpacing() * 8; next > max {
		next = max
	}
	s.schedulePump(next)
}

// tryPost stages the outbox head and posts it to the send mailbox. It
// reports false — leaving the outbox untouched — when the stage ring has no
// transmitted slot to reuse or the mailbox is busy.
func (s *Stack) tryPost() bool {
	c := s.k.Core()
	if s.staged-int64(s.nic.Transmitted()) >= int64(s.cfg.TXStageEntries) {
		s.pumpStall++
		return false
	}
	p := s.outbox[0]
	base := s.cfg.TXStageBase + (s.staged%int64(s.cfg.TXStageEntries))*256
	for i, v := range p {
		c.WriteWord(base+int64(i)*8, v)
	}
	if !s.Send(base, int64(len(p))) {
		return false
	}
	s.staged++
	s.outbox = s.outbox[1:]
	if len(s.outbox) == 0 {
		s.outbox = nil
	}
	return true
}

// Stats returns (received, dropped, sent). dropped counts genuinely lost
// packets (no bound socket, malformed descriptor); ring-full events are
// backpressure stalls, not drops — see Backpressure.
func (s *Stack) Stats() (received, dropped, sent uint64) {
	return s.received, s.dropNoSock + s.dropMalform, s.sent
}

// Backpressure returns (ring-full stall events, Send calls refused because
// the mailbox was occupied).
func (s *Stack) Backpressure() (ringStalls, sendBusy uint64) {
	return s.backpressure, s.sendBusy
}

// ServiceFaults counts injected mid-packet thread faults the stack absorbed
// by reprocessing (zero without a fault plan).
func (s *Stack) ServiceFaults() uint64 { return s.svcFaults }

// PendingRX reports NIC-ring packets the stack has accepted but not yet
// demuxed — nonzero while a ring-full stall holds delivery back. Packet
// conservation: received + dropped + PendingRX == NIC-delivered, always.
func (s *Stack) PendingRX() int64 {
	return s.k.Core().ReadWord(s.nic.TailAddr()) - s.rxHead
}

// DoorbellAddr returns the socket's monitorable delivery counter address —
// what an application thread arms monitor on.
func (sk *Socket) DoorbellAddr() int64 { return sk.base + sockDoorbell }

// NackAddr returns the socket's backpressure word address (bumped once per
// ring-full stall; monitorable by senders that want flow-control signals).
func (sk *Socket) NackAddr() int64 { return sk.base + sockNack }

// Nacks returns the socket's ring-full backpressure count.
func (sk *Socket) Nacks() int64 { return sk.nacks }

// Delivered returns the stack's authoritative delivery count for the socket.
func (sk *Socket) Delivered() int64 { return sk.delivered }

// Drops returns packets addressed to this socket that were lost. With
// backpressure in place this stays zero; it exists so accounting audits can
// assert conservation (delivered + drops == addressed).
func (sk *Socket) Drops() int64 { return sk.drops }

// Pending reports packets delivered but not yet consumed.
func (sk *Socket) Pending() int64 {
	c := sk.st.k.Core()
	return c.ReadWord(sk.base+sockDoorbell) - c.ReadWord(sk.base+sockConsumed)
}

// Recv pops the next packet (Go-side helper). ok is false when empty.
func (sk *Socket) Recv() (payload []int64, ok bool) {
	c := sk.st.k.Core()
	delivered := c.ReadWord(sk.base + sockDoorbell)
	consumed := c.ReadWord(sk.base + sockConsumed)
	if consumed >= delivered {
		return nil, false
	}
	slot := consumed % int64(sk.st.cfg.RingEntries)
	se := sk.base + sockSlots + slot*sockSlotBytes
	buf := c.ReadWord(se)
	length := c.ReadWord(se + 8)
	payload = make([]int64, length)
	for i := range payload {
		payload[i] = c.ReadWord(buf + int64(i)*8)
	}
	c.WriteWord(sk.base+sockConsumed, consumed+1)
	return payload, true
}

// RecvInto pops the next packet into buf without allocating, returning the
// payload length (truncated to len(buf)). ok is false when the ring is
// empty. This is the hot-path variant of Recv for consumers that process
// millions of packets — the serving scenarios' app workers.
func (sk *Socket) RecvInto(buf []int64) (n int, ok bool) {
	c := sk.st.k.Core()
	delivered := c.ReadWord(sk.base + sockDoorbell)
	consumed := c.ReadWord(sk.base + sockConsumed)
	if consumed >= delivered {
		return 0, false
	}
	slot := consumed % int64(sk.st.cfg.RingEntries)
	se := sk.base + sockSlots + slot*sockSlotBytes
	addr := c.ReadWord(se)
	length := c.ReadWord(se + 8)
	n = int(length)
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = c.ReadWord(addr + int64(i)*8)
	}
	c.WriteWord(sk.base+sockConsumed, consumed+1)
	return n, true
}
