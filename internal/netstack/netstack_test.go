package netstack

import (
	"bytes"
	"testing"

	"nocs/internal/asm"
	"nocs/internal/device"
	"nocs/internal/hwthread"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

func rig(t *testing.T) (*machine.Machine, *device.NIC, *Stack) {
	t.Helper()
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x100000, BufBase: 0x200000,
		TailAddr: 0x300000, HeadAddr: 0x300008,
		TXRingBase: 0x310000, TXDoorbell: 0x9100_0000, TXCompAddr: 0x320000,
	}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(k, nic, Config{
		SocketBase: 0x500000, BufBase: 0x580000, SendMailbox: 0x5F0000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0) // park the stack
	return m, nic, st
}

func TestBindAndDemux(t *testing.T) {
	m, nic, st := rig(t)
	s80, err := st.Bind(80)
	if err != nil {
		t.Fatal(err)
	}
	s443, err := st.Bind(443)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Bind(80); err == nil {
		t.Fatal("double bind accepted")
	}

	nic.Deliver([]int64{80, 9999, 11, 22}) // -> s80
	nic.Deliver([]int64{443, 9999, 33})    // -> s443
	nic.Deliver([]int64{7777, 9999, 44})   // unbound -> dropped
	m.Run(0)

	if s80.Pending() != 1 || s443.Pending() != 1 {
		t.Fatalf("pending %d/%d", s80.Pending(), s443.Pending())
	}
	p, ok := s80.Recv()
	if !ok || len(p) != 4 || p[2] != 11 || p[3] != 22 {
		t.Fatalf("s80 recv: %v %v", p, ok)
	}
	p, ok = s443.Recv()
	if !ok || p[2] != 33 {
		t.Fatalf("s443 recv: %v", p)
	}
	if _, ok := s80.Recv(); ok {
		t.Fatal("recv from drained socket")
	}
	rx, drop, _ := st.Stats()
	if rx != 2 || drop != 1 {
		t.Fatalf("stats rx=%d drop=%d", rx, drop)
	}
}

func TestSocketDoorbellWakesApp(t *testing.T) {
	m, nic, st := rig(t)
	sock, err := st.Bind(80)
	if err != nil {
		t.Fatal(err)
	}
	// Application thread blocks on its socket doorbell in assembly.
	app := asm.MustAssemble("app", `
main:
	monitor r1      ; r1 = socket doorbell
	mwait
	ld r2, [r1+0]   ; delivered count
	halt
`)
	if err := m.Core(0).BindProgram(0, app, "main"); err != nil {
		t.Fatal(err)
	}
	m.Core(0).Threads().Context(0).Regs.GPR[1] = sock.DoorbellAddr()
	m.Core(0).BootStart(0)
	m.Run(0) // app parks

	nic.Deliver([]int64{80, 1, 5})
	m.Run(0)
	ctx := m.Core(0).Threads().Context(0)
	if ctx.State != hwthread.Disabled || ctx.Regs.GPR[2] != 1 {
		t.Fatalf("app not woken by socket delivery: state=%v r2=%d", ctx.State, ctx.Regs.GPR[2])
	}
}

// Regression: a full ring used to drop overflow packets. With backpressure
// the stack stalls instead; once the consumer catches up every packet
// arrives, in order, with nothing lost.
func TestRingOverflowBackpressure(t *testing.T) {
	m, nic, st := rig(t)
	sock, err := st.Bind(80)
	if err != nil {
		t.Fatal(err)
	}
	// 20 packets into a 16-slot ring with no consumer.
	for i := 0; i < 20; i++ {
		nic.Deliver([]int64{80, 1, int64(i)})
	}
	m.Run(0)
	if sock.Pending() != 16 {
		t.Fatalf("pending %d, want 16", sock.Pending())
	}
	_, drop, _ := st.Stats()
	if drop != 0 {
		t.Fatalf("dropped %d, want 0 (backpressure must not lose packets)", drop)
	}
	if sock.Nacks() == 0 {
		t.Fatal("ring-full stall recorded no NACK")
	}
	if got := m.Core(0).ReadWord(sock.NackAddr()); got != sock.Nacks() {
		t.Fatalf("NACK word %d != socket nacks %d", got, sock.Nacks())
	}
	if held := st.PendingRX(); held != 4 {
		t.Fatalf("held in NIC ring %d, want 4", held)
	}

	// Consumer catches up: all 20 packets arrive, in order.
	var got []int64
	for i := 0; i < 20; i++ {
		p, ok := sock.Recv()
		if !ok {
			t.Fatalf("packet %d never delivered", i)
		}
		got = append(got, p[2])
		m.Run(0) // consumer write wakes the stalled stack
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("packet %d: payload %d (lost or reordered)", i, v)
		}
	}
	if _, ok := sock.Recv(); ok {
		t.Fatal("phantom extra packet")
	}
	rx, drop, _ := st.Stats()
	if rx != 20 || drop != 0 || st.PendingRX() != 0 {
		t.Fatalf("final accounting rx=%d drop=%d held=%d, want 20/0/0", rx, drop, st.PendingRX())
	}
}

func TestSendBackpressure(t *testing.T) {
	m, nic, st := rig(t)
	var wire [][]int64
	nic.OnTransmit = func(p []int64) { wire = append(wire, append([]int64(nil), p...)) }
	c := m.Core(0)
	const a, b = 0x700000, 0x700100
	c.WriteWord(a, 1)
	c.WriteWord(a+8, 2)
	c.WriteWord(a+16, 111)
	c.WriteWord(b, 3)
	c.WriteWord(b+8, 4)
	c.WriteWord(b+16, 222)

	if !st.Send(a, 3) {
		t.Fatal("send into a free mailbox refused")
	}
	// Mailbox still occupied (stack hasn't run): a blind overwrite here used
	// to silently lose the first packet. Now the post is refused.
	if st.Send(b, 3) {
		t.Fatal("send accepted while mailbox occupied")
	}
	if _, busy := st.Backpressure(); busy != 1 {
		t.Fatalf("sendBusy = %d, want 1", busy)
	}
	// Retry with backoff lands once the stack drains the mailbox.
	st.SendWithRetry(b, 3, 100)
	m.Run(0)
	if len(wire) != 2 || wire[0][2] != 111 || wire[1][2] != 222 {
		t.Fatalf("wire: %v, want both packets in post order", wire)
	}
	_, _, sent := st.Stats()
	if sent != 2 {
		t.Fatalf("sent = %d, want 2", sent)
	}
}

func TestSendGoesOutTheNIC(t *testing.T) {
	m, nic, st := rig(t)
	var wire [][]int64
	nic.OnTransmit = func(p []int64) { wire = append(wire, append([]int64(nil), p...)) }

	// Place a payload and post a send.
	const payload = 0x700000
	m.Core(0).WriteWord(payload, 443)
	m.Core(0).WriteWord(payload+8, 80)
	m.Core(0).WriteWord(payload+16, 1234)
	st.Send(payload, 3)
	m.Run(0)

	if len(wire) != 1 || wire[0][0] != 443 || wire[0][2] != 1234 {
		t.Fatalf("wire: %v", wire)
	}
	_, _, sent := st.Stats()
	if sent != 1 || nic.Transmitted() != 1 {
		t.Fatalf("sent=%d transmitted=%d", sent, nic.Transmitted())
	}
}

func TestEchoLoop(t *testing.T) {
	// Full loop: receive on port 7, echo back out the TX ring with ports
	// swapped, observe it on the wire.
	m, nic, st := rig(t)
	sock, err := st.Bind(7)
	if err != nil {
		t.Fatal(err)
	}
	var wire [][]int64
	nic.OnTransmit = func(p []int64) { wire = append(wire, append([]int64(nil), p...)) }

	nic.Deliver([]int64{7, 42, 111, 222})
	m.Run(0)
	p, ok := sock.Recv()
	if !ok {
		t.Fatal("no packet")
	}
	// Echo: swap ports, reuse payload, send.
	const out = 0x700000
	c := m.Core(0)
	c.WriteWord(out, p[1])
	c.WriteWord(out+8, p[0])
	for i, w := range p[2:] {
		c.WriteWord(out+16+int64(i)*8, w)
	}
	st.Send(out, int64(len(p)))
	m.Run(0)
	if len(wire) != 1 || wire[0][0] != 42 || wire[0][1] != 7 || wire[0][2] != 111 {
		t.Fatalf("echoed: %v", wire)
	}
}

func TestShortPacketDropped(t *testing.T) {
	m, nic, st := rig(t)
	st.Bind(80)
	nic.Deliver([]int64{80}) // too short (needs dst+src)
	m.Run(0)
	_, drop, _ := st.Stats()
	if drop != 1 {
		t.Fatalf("dropped %d", drop)
	}
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
}

// Property: packet conservation — every delivered packet is received into a
// socket ring, counted as dropped (unbound port), or still held in the NIC
// ring by backpressure; and once consumers catch up, nothing remains held.
func TestPacketConservationProperty(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		m, nic, st := rig(t)
		s80, _ := st.Bind(80)
		s443, _ := st.Bind(443)
		rng := sim.NewRNG(seed)
		n := 30 + rng.Intn(30)
		for i := 0; i < n; i++ {
			port := []int64{80, 443, 7777}[rng.Intn(3)] // 7777 unbound
			nic.Deliver([]int64{port, 1, int64(i)})
			if rng.Intn(2) == 0 {
				m.Run(0)
			}
		}
		m.Run(0)
		rx, drop, _ := st.Stats()
		delivered, nicDrop := nic.Stats()
		held := uint64(st.PendingRX())
		if rx+drop+held != delivered {
			t.Fatalf("seed %d: rx %d + drop %d + held %d != delivered %d (nic dropped %d)",
				seed, rx, drop, held, delivered, nicDrop)
		}
		// Liveness: drain the consumers; the stack must deliver every held
		// packet and end with nothing unaccounted.
		for iter := 0; st.PendingRX() > 0 || s80.Pending() > 0 || s443.Pending() > 0; iter++ {
			if iter > 1000 {
				t.Fatalf("seed %d: stack never drained (held %d)", seed, st.PendingRX())
			}
			s80.Recv()
			s443.Recv()
			m.Run(0)
		}
		rx, drop, _ = st.Stats()
		if rx+drop != delivered {
			t.Fatalf("seed %d: after drain rx %d + drop %d != delivered %d",
				seed, rx, drop, delivered)
		}
	}
}

// asyncRig is rig plus a TX staging area, enabling SendAsync.
func asyncRig(t *testing.T) (*machine.Machine, *device.NIC, *Stack) {
	t.Helper()
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x100000, BufBase: 0x200000,
		TailAddr: 0x300000, HeadAddr: 0x300008,
		TXRingBase: 0x310000, TXDoorbell: 0x9100_0000, TXCompAddr: 0x320000,
	}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := New(k, nic, Config{
		SocketBase: 0x500000, BufBase: 0x580000, SendMailbox: 0x5F0000,
		TXStageBase: 0x600000, TXStageEntries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	return m, nic, st
}

// SendAsync must deliver every queued payload in FIFO order even when the
// burst is far deeper than the mailbox (one slot) and the stage ring.
func TestSendAsyncDrainsBurstInOrder(t *testing.T) {
	m, nic, st := asyncRig(t)
	var wire [][]int64
	nic.OnTransmit = func(p []int64) { wire = append(wire, append([]int64(nil), p...)) }
	const n = 50
	for i := 0; i < n; i++ {
		st.SendAsync([]int64{100, 7, int64(1000 + i)})
	}
	if queued, backlog, _ := st.TxQueue(); queued != n || backlog == 0 {
		t.Fatalf("queued=%d backlog=%d after a %d-deep burst", queued, backlog, n)
	}
	m.Run(0)
	if len(wire) != n {
		t.Fatalf("transmitted %d, want %d", len(wire), n)
	}
	for i, p := range wire {
		if p[2] != int64(1000+i) {
			t.Fatalf("packet %d out of order: %v", i, p)
		}
	}
	if _, backlog, _ := st.TxQueue(); backlog != 0 {
		t.Fatalf("backlog %d after drain", backlog)
	}
	// The mailbox is one slot deep, so a 50-deep burst must have hit it busy.
	if _, busy := st.Backpressure(); busy == 0 {
		t.Fatal("no mailbox-busy refusals recorded during the burst")
	}
	_, _, sent := st.Stats()
	if sent != n || nic.Transmitted() != n {
		t.Fatalf("sent=%d transmitted=%d", sent, nic.Transmitted())
	}
}

// A SendWithRetry backoff pending at checkpoint time is stack-owned state:
// snapshotting a machine mid-backoff and restoring it must replay the retry
// and land the packet.
func TestSendRetrySurvivesCheckpoint(t *testing.T) {
	build := func(t *testing.T) (*machine.Machine, *device.NIC, *Stack) {
		m, nic, st := asyncRig(t)
		k := st.k
		m.AttachSnapshotter("nocs", 0, k)
		m.AttachSnapshotter("netstack", 0, st)
		_ = nic
		return m, nic, st
	}
	mA, _, stA := build(t)
	c := mA.Core(0)
	const a, b = 0x700000, 0x700100
	for i, v := range []int64{100, 7, 42} {
		c.WriteWord(a+int64(i)*8, v)
	}
	for i, v := range []int64{100, 7, 43} {
		c.WriteWord(b+int64(i)*8, v)
	}
	if !stA.Send(a, 3) {
		t.Fatal("first send refused")
	}
	stA.SendWithRetry(b, 3, 64) // mailbox busy: schedules a tracked retry
	found := false
	for _, e := range stA.live {
		if e.kind == evSendRetry {
			found = true
		}
	}
	if !found {
		t.Fatal("no tracked send-retry event; backoff is not checkpointable")
	}
	var buf bytes.Buffer
	if err := mA.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	mB, nicB, stB := build(t)
	var wireB [][]int64
	nicB.OnTransmit = func(p []int64) { wireB = append(wireB, append([]int64(nil), p...)) }
	if err := mB.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	mB.Run(0)
	if len(wireB) != 2 || wireB[0][2] != 42 || wireB[1][2] != 43 {
		t.Fatalf("restored wire: %v, want both packets in post order", wireB)
	}
	if _, _, sent := stB.Stats(); sent != 2 {
		t.Fatalf("restored sent=%d", sent)
	}
}
