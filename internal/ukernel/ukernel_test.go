package ukernel

import (
	"testing"

	"nocs/internal/asm"
	"nocs/internal/hwthread"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

func TestMailboxServiceEndToEnd(t *testing.T) {
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	svc, err := NewMailboxService(k, "fs", 0xB0000, 4, FSWork)
	if err != nil {
		t.Fatal(err)
	}
	src := `
main:
	movi r2, 7     ; op
	movi r3, 35    ; arg
` + ClientCallSource("fs") + `
	mov r9, r1
	halt
`
	prog := asm.MustAssemble("client", src)
	m.Core(0).BindProgram(0, prog, "main")
	svc.SetupClientRegs(m.Core(0).Threads().Context(0), 0)
	m.Run(0) // park service
	m.Core(0).BootStart(0)
	m.Run(0)
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	ctx := m.Core(0).Threads().Context(0)
	if ctx.Regs.GPR[9] != 42 {
		t.Fatalf("IPC result %d, want 42", ctx.Regs.GPR[9])
	}
	if svc.Calls() != 1 {
		t.Fatalf("calls %d", svc.Calls())
	}
	// Slot released.
	if m.Mem().Read(svc.SlotBase(0)) != StatusFree {
		t.Fatal("slot not released")
	}
}

func TestMailboxServiceConcurrentClients(t *testing.T) {
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	svc, err := NewMailboxService(k, "fs", 0xB0000, 4, FSWork)
	if err != nil {
		t.Fatal(err)
	}
	src := `
main:
	movi r2, 1
	mov r3, r12    ; per-client arg preloaded in r12
` + ClientCallSource("fs") + `
	mov r9, r1
	halt
`
	prog := asm.MustAssemble("client", src)
	m.Run(0)
	for i := 0; i < 3; i++ {
		p := hwthread.PTID(i)
		m.Core(0).BindProgram(p, prog, "main")
		ctx := m.Core(0).Threads().Context(p)
		svc.SetupClientRegs(ctx, i)
		ctx.Regs.GPR[12] = int64(100 * (i + 1))
		m.Core(0).BootStart(p)
	}
	m.Run(0)
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	for i := 0; i < 3; i++ {
		got := m.Core(0).Threads().Context(hwthread.PTID(i)).Regs.GPR[9]
		want := int64(100*(i+1)) + 1
		if got != want {
			t.Fatalf("client %d result %d, want %d", i, got, want)
		}
	}
	if svc.Calls() != 3 {
		t.Fatalf("calls %d", svc.Calls())
	}
}

func TestMailboxRepeatedCallsSameSlot(t *testing.T) {
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	svc, err := NewMailboxService(k, "net", 0xB0000, 1, NetWork)
	if err != nil {
		t.Fatal(err)
	}
	src := `
main:
	movi r8, 0    ; iteration
	movi r9, 0    ; sum
loop:
	movi r2, 0
	mov r3, r8
` + ClientCallSource("net") + `
	add r9, r9, r1
	addi r8, r8, 1
	movi r7, 4
	blt r8, r7, loop
	halt
`
	prog := asm.MustAssemble("client", src)
	m.Core(0).BindProgram(0, prog, "main")
	svc.SetupClientRegs(m.Core(0).Threads().Context(0), 0)
	m.Run(0)
	m.Core(0).BootStart(0)
	m.Run(0)
	// sum of 0..3 = 6
	if got := m.Core(0).Threads().Context(0).Regs.GPR[9]; got != 6 {
		t.Fatalf("sum %d, want 6", got)
	}
	if svc.Calls() != 4 {
		t.Fatalf("calls %d", svc.Calls())
	}
}

func TestNewMailboxServiceValidation(t *testing.T) {
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	if _, err := NewMailboxService(k, "x", 0xB0000, 0, FSWork); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestMonolithicRegistration(t *testing.T) {
	m := machine.New()
	k := kernel.NewLegacy(m.Core(0))
	RegisterMonolithic(k, 10, FSWork)
	prog := asm.MustAssemble("u", `
main:
	movi r1, 10
	movi r2, 7
	movi r3, 35
	syscall
	mov r9, r1
	halt
`)
	m.Core(0).BindProgram(0, prog, "main")
	m.Core(0).BootStart(0)
	m.Run(0)
	if got := m.Core(0).Threads().Context(0).Regs.GPR[9]; got != 42 {
		t.Fatalf("monolithic result %d", got)
	}
}

func TestLegacyIPCCostsMoreThanMonolithic(t *testing.T) {
	run := func(register func(*kernel.Legacy)) sim.Cycles {
		m := machine.New()
		k := kernel.NewLegacy(m.Core(0))
		register(k)
		prog := asm.MustAssemble("u", `
main:
	movi r1, 10
	movi r2, 7
	movi r3, 35
	syscall
	halt
`)
		m.Core(0).BindProgram(0, prog, "main")
		m.Core(0).BootStart(0)
		m.Run(0)
		return m.Now()
	}
	mono := run(func(k *kernel.Legacy) { RegisterMonolithic(k, 10, FSWork) })
	ipc := run(func(k *kernel.Legacy) { RegisterLegacyIPC(k, 10, LegacyIPCCosts{}, FSWork) })
	// IPC adds 2*400 scheduler + 2*1200 context switches = 3200.
	if ipc-mono != 3200 {
		t.Fatalf("IPC overhead %v, want 3200", ipc-mono)
	}
}

func TestDirectIPCFasterThanLegacyIPC(t *testing.T) {
	// The F6 claim: direct hardware-thread IPC beats scheduler-mediated IPC.
	legacy := func() sim.Cycles {
		m := machine.New()
		k := kernel.NewLegacy(m.Core(0))
		RegisterLegacyIPC(k, 10, LegacyIPCCosts{}, FSWork)
		prog := asm.MustAssemble("u", "main:\n\tmovi r1, 10\n\tmovi r2, 7\n\tmovi r3, 35\n\tsyscall\n\thalt")
		m.Core(0).BindProgram(0, prog, "main")
		m.Core(0).BootStart(0)
		m.Run(0)
		return m.Now()
	}()
	direct := func() sim.Cycles {
		m := machine.New()
		k := kernel.NewNocs(m.Core(0))
		svc, _ := NewMailboxService(k, "fs", 0xB0000, 1, FSWork)
		src := "main:\n\tmovi r2, 7\n\tmovi r3, 35\n" + ClientCallSource("fs") + "\thalt"
		prog := asm.MustAssemble("u", src)
		m.Core(0).BindProgram(0, prog, "main")
		svc.SetupClientRegs(m.Core(0).Threads().Context(0), 0)
		m.Run(0)
		start := m.Now()
		m.Core(0).BootStart(0)
		m.Run(0)
		return m.Now() - start
	}()
	if direct >= legacy {
		t.Fatalf("direct IPC %v not faster than legacy IPC %v", direct, legacy)
	}
}

func TestCannedServices(t *testing.T) {
	if r, c := FSWork(7, 35); r != 42 || c != 800 {
		t.Fatal("FSWork")
	}
	if r, c := NetWork(0, 1500); r != 1500 || c != 600 {
		t.Fatal("NetWork")
	}
}
