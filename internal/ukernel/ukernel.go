// Package ukernel implements microkernel-style services and the three IPC
// mechanisms experiment F6 compares (§2 "Faster Microkernels and Container
// Proxies"):
//
//  1. Monolithic syscall — the service lives in the kernel; a call is one
//     in-thread mode switch (the Linux shape).
//  2. Legacy microkernel IPC — the service is a separate process; a call is
//     a syscall plus a scheduler invocation plus two software context
//     switches (into the service process and back).
//  3. Direct hardware-thread IPC — the service is a dedicated hardware
//     thread; the client writes a request into a mailbox and the service
//     wakes on the doorbell, "achieving the same result as XPC [30] while
//     using a simpler hardware mechanism. There is no need to move into
//     kernel space and invoke the scheduler."
//
// Mailbox slot layout (32 bytes at base + 32*slot):
//
//	+0:  status (0 free, 1 posted, 2 done) — doorbell, monitored by both sides
//	+8:  op
//	+16: arg
//	+24: result
package ukernel

import (
	"fmt"

	"nocs/internal/hwthread"
	"nocs/internal/kernel"
	"nocs/internal/sim"
)

// WorkFn is a service body: given op and arg it returns the result and its
// service cost in cycles.
type WorkFn func(op, arg int64) (ret int64, cost sim.Cycles)

// Mailbox slot field offsets.
const (
	SlotBytes  = 32
	slotStatus = 0
	slotOp     = 8
	slotArg    = 16
	slotRet    = 24

	// Slot states.
	StatusFree   = 0
	StatusPosted = 1
	StatusDone   = 2
	// StatusBusy marks a request the service has accepted but not finished;
	// it prevents double-service while the reply write is in flight.
	StatusBusy = 3
)

// MailboxService is a microkernel service running on a dedicated hardware
// thread, woken by mailbox doorbell writes.
type MailboxService struct {
	Name  string
	Base  int64
	Slots int

	k     *kernel.Nocs
	ptid  hwthread.PTID
	work  WorkFn
	calls uint64
}

// NewMailboxService spawns the service thread watching all slot doorbells.
func NewMailboxService(k *kernel.Nocs, name string, base int64, slots int, work WorkFn) (*MailboxService, error) {
	if slots < 1 {
		return nil, fmt.Errorf("ukernel: service %q needs at least one slot", name)
	}
	s := &MailboxService{Name: name, Base: base, Slots: slots, k: k, work: work}
	doorbells := make([]int64, slots)
	for i := range doorbells {
		doorbells[i] = base + int64(i)*SlotBytes + slotStatus
	}
	c := k.Core()
	p, err := k.SpawnService(name, func() []int64 { return doorbells },
		func(t *hwthread.Context) sim.Cycles {
			var cost sim.Cycles
			for i := 0; i < slots; i++ {
				sb := base + int64(i)*SlotBytes
				if c.ReadWord(sb+slotStatus) != StatusPosted {
					continue
				}
				c.WriteWord(sb+slotStatus, StatusBusy)
				op := c.ReadWord(sb + slotOp)
				arg := c.ReadWord(sb + slotArg)
				ret, wcost := work(op, arg)
				cost += wcost + c.AccessCost(sb)
				s.calls++
				// The reply lands once the service has actually done the
				// work (wake time + everything processed ahead of it).
				c.Shard().After(cost, "ipc-reply", func() {
					c.WriteWord(sb+slotRet, ret)
					c.WriteWord(sb+slotStatus, StatusDone) // reply doorbell
				})
			}
			return cost
		})
	if err != nil {
		return nil, err
	}
	s.ptid = p
	return s, nil
}

// PTID returns the service's hardware thread.
func (s *MailboxService) PTID() hwthread.PTID { return s.ptid }

// Calls returns the number of requests served.
func (s *MailboxService) Calls() uint64 { return s.calls }

// SlotBase returns the address of slot i.
func (s *MailboxService) SlotBase(i int) int64 { return s.Base + int64(i)*SlotBytes }

// ClientCallSource returns assembly for a blocking call through slot
// registers: the caller places op in r2 and arg in r3 and receives the
// result in r1. r10 must hold the slot base (set it with SetupClientRegs).
// The client arms its monitor BEFORE posting the doorbell, so the service's
// reply can never be lost; its own doorbell store triggers an immediate
// spurious wake which the status check filters out.
//
// CLOBBERS: r1, r4, r5, r6, r11. Callers must keep loop state elsewhere.
//
// The returned fragment defines labels prefixed with the given tag and
// falls through to the instruction after `<tag>_ret:`.
func ClientCallSource(tag string) string {
	return fmt.Sprintf(`
%[1]s_call:
	st [r10+8], r2      ; op
	st [r10+16], r3     ; arg
	mov r11, r10        ; status address = slot base
	monitor r11         ; arm before posting (no lost reply)
	movi r5, 1
	st [r10+0], r5      ; post doorbell
%[1]s_wait:
	mwait
	ld r6, [r10+0]
	movi r4, 2
	beq r6, r4, %[1]s_ret
	monitor r11         ; spurious wake (our own store): re-arm
	jmp %[1]s_wait
%[1]s_ret:
	ld r1, [r10+24]     ; result
	movi r5, 0
	st [r10+0], r5      ; release slot
`, tag)
}

// SetupClientRegs points a client thread's r10 at its slot.
func (s *MailboxService) SetupClientRegs(t *hwthread.Context, slot int) {
	t.Regs.GPR[10] = s.SlotBase(slot)
}

// RegisterMonolithic installs the service as an ordinary in-kernel syscall
// (mechanism 1): one in-thread mode switch per call.
func RegisterMonolithic(k *kernel.Legacy, num int64, work WorkFn) {
	k.RegisterSyscall(num, func(t *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		return work(args[0], args[1])
	})
}

// LegacyIPCCosts prices mechanism 2's kernel-side overhead.
type LegacyIPCCosts struct {
	// Scheduler is the run-queue manipulation cost per direction
	// (default 400 — picking the service process, then the client again).
	Scheduler sim.Cycles
}

// RegisterLegacyIPC installs the service behind a scheduler-mediated IPC
// syscall (mechanism 2): the syscall's in-thread mode switch is charged by
// the core as usual; on top, each call pays two scheduler invocations and
// two software context switches (to the service process and back), which is
// what the paper says makes microkernels slow today.
func RegisterLegacyIPC(k *kernel.Legacy, num int64, costs LegacyIPCCosts, work WorkFn) {
	if costs.Scheduler == 0 {
		costs.Scheduler = 400
	}
	cs := k.Core().Costs().ContextSwitch
	k.RegisterSyscall(num, func(t *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		ret, wcost := work(args[0], args[1])
		total := 2*costs.Scheduler + 2*cs + wcost
		return ret, total
	})
}

// Canned services used by the F6 experiment and the examples.

// FSWork models a file-system lookup/read: 800 cycles, echoes arg+op.
func FSWork(op, arg int64) (int64, sim.Cycles) { return arg + op, 800 }

// NetWork models a network-stack send: 600 cycles, returns bytes "sent".
func NetWork(op, arg int64) (int64, sim.Cycles) { return arg, 600 }
