// Package kernel implements the two operating-system personalities compared
// throughout the paper, plus the queueing-level server models used by the
// tail-latency experiments:
//
//   - Legacy: a conventional kernel. Syscalls are in-thread privilege-mode
//     switches, I/O is interrupt-driven, and software threads are
//     multiplexed onto the few OS-visible hardware threads by a scheduler
//     that pays context-switch costs. A FlexSC-style asynchronous syscall
//     mode is included as the strongest software-only baseline.
//   - Nocs: the paper's kernel. Every kernel service is a dedicated
//     hardware thread blocked in monitor/mwait; syscalls and faults are
//     exception descriptors; I/O threads wake on device queue-tail writes;
//     servers run thread-per-request on hardware threads.
//
// The queueing servers in this file model request service disciplines
// exactly (event-driven, deterministic): FCFS run-to-completion (IX/ZygOS
// style), fluid processor sharing (the hardware RR of §4), and software
// timeslicing with per-switch costs (the legacy preemptive alternative).
// They are validated in the tests against M/M/1 and M/G/1 theory.
package kernel

import (
	"fmt"
	"math"
	"strconv"

	"nocs/internal/faultinject"
	"nocs/internal/sim"
	"nocs/internal/trace"
	"nocs/internal/workload"
)

// ring is a head-indexed FIFO that recycles its backing array: pop advances
// the head instead of re-slicing capacity away, and push compacts the live
// tail to the front when the array fills, so a steady-state server enqueues
// and dequeues with no allocation. (The old `queue = queue[1:]` idiom leaked
// capacity on every pop and reallocated on every later append.)
type ring[T any] struct {
	buf  []T
	head int
}

func (q *ring[T]) len() int { return len(q.buf) - q.head }

func (q *ring[T]) push(v T) {
	if len(q.buf) == cap(q.buf) && q.head > 0 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, v)
}

func (q *ring[T]) pop() T {
	v := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}

// laneSet places request spans onto "req-lane-N" tracks. Requests overlap
// freely inside a queueing server, but spans on one Chrome-trace track must
// nest, so each span goes to the first lane whose previous span has already
// finished (greedy first-fit); a new lane is opened only when every existing
// lane is busy. Spans arrive in completion order, not start order, so the
// lane count can slightly exceed the peak span concurrency — analyses should
// sweep the spans themselves, not count lanes.
type laneSet struct {
	tr      *trace.Tracer
	process string
	lanes   []trace.TrackID
	busy    []int64 // per-lane finish time of the last span placed
}

func (l *laneSet) span(name, arg string, start, finish int64) {
	if l == nil {
		return
	}
	lane := -1
	for i, b := range l.busy {
		if b <= start {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(l.lanes)
		l.lanes = append(l.lanes, l.tr.NewTrack(l.process, "req-lane-"+strconv.Itoa(lane)))
		l.busy = append(l.busy, 0)
	}
	l.busy[lane] = finish
	l.tr.CompleteArg(l.lanes[lane], name, arg, start, finish-start)
}

// Completion reports one finished request.
type Completion struct {
	Req    workload.Request
	Finish sim.Cycles
	// Latency is finish - arrival (sojourn time).
	Latency sim.Cycles
}

// QueueServer is a request service discipline running on the event engine.
type QueueServer interface {
	// Submit schedules a request's arrival (Req.Arrival must be ≥ now).
	Submit(r workload.Request)
	// Name identifies the discipline in reports.
	Name() string
}

// FCFSServer is run-to-completion first-come-first-served on K servers —
// the dataplane-OS baseline. Each dispatch pays Overhead cycles (interrupt
// delivery, scheduler, context switch) before service.
type FCFSServer struct {
	eng        *sim.Shard
	K          int
	Overhead   sim.Cycles
	OnComplete func(Completion)
	// Faults injects mid-request thread faults (nil = off). A faulted
	// request runs half its service, writes an exception descriptor, and is
	// requeued with its full demand plus the fault penalty — degraded
	// latency, guaranteed completion. Each request faults at most once, so
	// liveness is deterministic, not probabilistic.
	Faults *faultinject.Injector

	queue       ring[workload.Request]
	busy        int
	done        uint64
	faulted     uint64
	faultedOnce map[int]bool
	lanes       *laneSet
	// donePool recycles completion-event callbacks: at most K are in flight,
	// so the steady state schedules completions with zero allocations.
	donePool []*fcfsDone
}

// fcfsArrival is an allocation-free arrival event body (sim.Callback).
// SubmitAll builds one arena of these per request batch.
type fcfsArrival struct {
	s *FCFSServer
	r workload.Request
}

func (a *fcfsArrival) OnEvent() {
	a.s.queue.push(a.r)
	a.s.dispatch()
}

// fcfsDone is a pooled completion/fault event body: one per busy server.
type fcfsDone struct {
	s     *FCFSServer
	r     workload.Request
	total sim.Cycles // charged service time (halved service for faults)
	pen   sim.Cycles
	fault bool
}

func (s *FCFSServer) getDone() *fcfsDone {
	if n := len(s.donePool); n > 0 {
		d := s.donePool[n-1]
		s.donePool = s.donePool[:n-1]
		return d
	}
	return &fcfsDone{s: s}
}

// NewFCFS builds an FCFS server pool.
func NewFCFS(eng *sim.Shard, k int, overhead sim.Cycles, onComplete func(Completion)) *FCFSServer {
	if k < 1 {
		k = 1
	}
	return &FCFSServer{eng: eng, K: k, Overhead: overhead, OnComplete: onComplete}
}

// Name identifies the discipline.
func (s *FCFSServer) Name() string { return "legacy-fcfs" }

// EnableTrace records one service span per request (dispatch through
// completion, overhead included) on greedy lanes under process. With K
// servers at most K lanes ever open.
func (s *FCFSServer) EnableTrace(tr *trace.Tracer, process string) {
	if tr.Enabled() {
		s.lanes = &laneSet{tr: tr, process: process}
	}
}

// Submit schedules the arrival.
func (s *FCFSServer) Submit(r workload.Request) {
	s.eng.AtCallback(r.Arrival, "fcfs-arrival", &fcfsArrival{s: s, r: r})
}

// SubmitAll schedules every arrival in order with a single allocation (one
// arena of arrival callbacks), replacing a closure per request.
func (s *FCFSServer) SubmitAll(reqs []workload.Request) {
	arr := make([]fcfsArrival, len(reqs))
	for i, r := range reqs {
		arr[i] = fcfsArrival{s: s, r: r}
		s.eng.AtCallback(r.Arrival, "fcfs-arrival", &arr[i])
	}
}

// Completed returns the number of finished requests.
func (s *FCFSServer) Completed() uint64 { return s.done }

// Faulted returns the number of injected mid-request faults taken.
func (s *FCFSServer) Faulted() uint64 { return s.faulted }

// pollFault decides whether request r faults this dispatch (at most once
// per request ID across requeues).
func (s *FCFSServer) pollFault(r workload.Request) (sim.Cycles, bool) {
	if s.Faults == nil || s.faultedOnce[r.ID] {
		return 0, false
	}
	pen, ok := s.Faults.RequestFault()
	if ok {
		if s.faultedOnce == nil {
			s.faultedOnce = make(map[int]bool)
		}
		s.faultedOnce[r.ID] = true
	}
	return pen, ok
}

func (s *FCFSServer) dispatch() {
	for s.busy < s.K && s.queue.len() > 0 {
		r := s.queue.pop()
		s.busy++
		total := s.Overhead + r.Demand
		d := s.getDone()
		d.r = r
		if pen, ok := s.pollFault(r); ok {
			// The request faults mid-service: the hardware writes an
			// exception descriptor and disables the thread; the kernel's
			// response is to requeue the request (with the descriptor-
			// handling penalty folded into its demand) rather than lose it.
			partial := total / 2
			if partial < 1 {
				partial = 1
			}
			s.faulted++
			d.total, d.pen, d.fault = partial, pen, true
			s.eng.AfterCallback(partial, "fcfs-fault", d)
			continue
		}
		d.total, d.pen, d.fault = total, 0, false
		s.eng.AfterCallback(total, "fcfs-done", d)
	}
}

func (d *fcfsDone) OnEvent() {
	s := d.s
	s.busy--
	if d.fault {
		if s.lanes != nil {
			now := int64(s.eng.Now())
			s.lanes.span("fault", "req"+strconv.Itoa(d.r.ID), now-int64(d.total), now)
		}
		r2 := d.r
		r2.Demand += d.pen
		s.donePool = append(s.donePool, d)
		s.queue.push(r2)
		s.dispatch()
		return
	}
	s.done++
	if s.lanes != nil {
		now := int64(s.eng.Now())
		s.lanes.span("service", "req"+strconv.Itoa(d.r.ID), now-int64(d.total), now)
	}
	comp := Completion{Req: d.r, Finish: s.eng.Now(), Latency: s.eng.Now() - d.r.Arrival}
	s.donePool = append(s.donePool, d)
	if s.OnComplete != nil {
		s.OnComplete(comp)
	}
	s.dispatch()
}

// PSServer is fluid processor sharing with capacity C: with n active
// requests each runs at rate min(1, C/n). This is the discipline the
// paper's hardware RR emulates (§4: "execute runnable hardware threads in a
// fine-grain, round-robin manner, which emulates processor sharing").
// Each request pays Overhead once at arrival — for the nocs personality this
// is the hardware-thread start latency (tens of cycles), not a context
// switch.
type PSServer struct {
	eng        *sim.Shard
	C          int
	Overhead   sim.Cycles
	OnComplete func(Completion)
	// MaxActive caps concurrent in-service requests (0 = unlimited). This
	// models a finite hardware-thread pool: arrivals beyond the cap queue
	// FCFS until a thread frees up (ablation A1).
	MaxActive int
	// Faults injects mid-request thread faults (nil = off). A faulted
	// request reaches half its service, takes an exception descriptor, and
	// restarts on the same hardware thread with full demand plus the fault
	// penalty. At most one fault per request: completion is guaranteed.
	Faults *faultinject.Injector

	active     map[int]*psReq
	pending    ring[workload.Request]
	lastUpdate sim.Cycles
	nextEv     sim.Handle
	nextTarget *psReq
	done       uint64
	faulted    uint64
	// free recycles psReq bodies; finBuf is the reused simultaneous-finisher
	// buffer (replaces a fresh slice + sort.Slice closure per completion).
	free   []*psReq
	finBuf []*psReq

	lanes    *laneSet
	tr       *trace.Tracer
	activeTk trace.TrackID
}

// psArrival is an allocation-free arrival event body; SubmitAll builds one
// arena of these per request batch.
type psArrival struct {
	s *PSServer
	r workload.Request
}

func (a *psArrival) OnEvent() { a.s.arrive(a.r) }

type psReq struct {
	r         workload.Request
	remaining float64
	// faultPen > 0 marks a request that will fault when its (halved)
	// remaining drains; the value is the requeue penalty.
	faultPen sim.Cycles
}

// NewPS builds a processor-sharing server of capacity c.
func NewPS(eng *sim.Shard, c int, overhead sim.Cycles, onComplete func(Completion)) *PSServer {
	if c < 1 {
		c = 1
	}
	return &PSServer{eng: eng, C: c, Overhead: overhead, OnComplete: onComplete,
		active: make(map[int]*psReq)}
}

// Name identifies the discipline.
func (s *PSServer) Name() string { return "nocs-ps" }

// EnableTrace records one sojourn span per request (arrival through
// completion) on greedy lanes under process, plus an "active" counter. Under
// overload the sojourn spans stack deeper than C — visibly interleaved
// service, where FCFS lanes would cap at K.
func (s *PSServer) EnableTrace(tr *trace.Tracer, process string) {
	if tr.Enabled() {
		s.lanes = &laneSet{tr: tr, process: process}
		s.tr = tr
		s.activeTk = tr.NewTrack(process, "active")
	}
}

func (s *PSServer) traceActive() {
	s.tr.Count(s.activeTk, "active", int64(s.eng.Now()), int64(len(s.active)))
}

// Completed returns the number of finished requests.
func (s *PSServer) Completed() uint64 { return s.done }

// Faulted returns the number of injected mid-request faults taken.
func (s *PSServer) Faulted() uint64 { return s.faulted }

// Active returns the number of in-service requests.
func (s *PSServer) Active() int { return len(s.active) }

// Submit schedules the arrival.
func (s *PSServer) Submit(r workload.Request) {
	s.eng.AtCallback(r.Arrival, "ps-arrival", &psArrival{s: s, r: r})
}

// SubmitAll schedules every arrival in order with a single allocation (one
// arena of arrival callbacks), replacing a closure per request.
func (s *PSServer) SubmitAll(reqs []workload.Request) {
	arr := make([]psArrival, len(reqs))
	for i, r := range reqs {
		arr[i] = psArrival{s: s, r: r}
		s.eng.AtCallback(r.Arrival, "ps-arrival", &arr[i])
	}
}

// arrive is the arrival-event body.
func (s *PSServer) arrive(r workload.Request) {
	s.advance()
	if s.MaxActive > 0 && len(s.active) >= s.MaxActive {
		s.pending.push(r)
		return
	}
	s.admit(r)
	s.traceActive()
	s.reschedule()
}

// getReq pops a recycled request body (reset) or allocates a fresh one.
func (s *PSServer) getReq() *psReq {
	if n := len(s.free); n > 0 {
		a := s.free[n-1]
		s.free = s.free[:n-1]
		*a = psReq{}
		return a
	}
	return &psReq{}
}

func (s *PSServer) admit(r workload.Request) {
	a := s.getReq()
	a.r = r
	a.remaining = float64(s.Overhead + r.Demand)
	if s.Faults != nil {
		if pen, ok := s.Faults.RequestFault(); ok {
			// Fault halfway through service; the requeue happens in OnEvent
			// when the halved remaining drains.
			a.remaining /= 2
			if a.remaining < 1 {
				a.remaining = 1
			}
			a.faultPen = pen
		}
	}
	s.active[r.ID] = a
}

// rate returns the current per-request service rate.
func (s *PSServer) rate() float64 {
	n := len(s.active)
	if n == 0 {
		return 0
	}
	if n <= s.C {
		return 1
	}
	return float64(s.C) / float64(n)
}

// advance drains elapsed virtual work since the last update.
func (s *PSServer) advance() {
	now := s.eng.Now()
	elapsed := float64(now - s.lastUpdate)
	s.lastUpdate = now
	if elapsed <= 0 || len(s.active) == 0 {
		return
	}
	r := s.rate()
	for _, a := range s.active {
		a.remaining -= elapsed * r
	}
}

// reschedule finds the next completion and arms a single event for it.
func (s *PSServer) reschedule() {
	if s.nextEv != sim.NoEvent {
		s.eng.Cancel(s.nextEv)
		s.nextEv = sim.NoEvent
	}
	if len(s.active) == 0 {
		return
	}
	// Smallest remaining completes first; ties break on lower ID for
	// determinism.
	var min *psReq
	for _, a := range s.active {
		if min == nil || a.remaining < min.remaining ||
			(a.remaining == min.remaining && a.r.ID < min.r.ID) {
			min = a
		}
	}
	r := s.rate()
	wait := sim.Cycles(math.Ceil(math.Max(0, min.remaining) / r))
	s.nextTarget = min
	s.nextEv = s.eng.AfterCallback(wait, "ps-done", s)
}

// OnEvent completes the armed next-finisher (sim.Callback: the server is its
// own completion-event body, so the steady state allocates no closures).
func (s *PSServer) OnEvent() {
	target := s.nextTarget
	s.nextEv = sim.NoEvent
	s.nextTarget = nil
	s.advance()
	// Complete everything at or below zero (simultaneous finishers). Collect
	// first and sort by ID: map order must not leak into completion order or
	// the trace would be nondeterministic.
	finished := s.finBuf[:0]
	for id, a := range s.active {
		if a.remaining <= 1e-9 || a == target {
			if a.faultPen > 0 {
				// Mid-request fault: exception descriptor written, thread
				// restarted on the same hardware thread with full demand
				// plus the penalty. The request stays active — degraded,
				// never lost.
				a.remaining = float64(s.Overhead + a.r.Demand + a.faultPen)
				a.faultPen = 0
				s.faulted++
				continue
			}
			delete(s.active, id)
			finished = append(finished, a)
		}
	}
	s.finBuf = finished
	// Insertion sort by ID (IDs unique, so the order matches what sort.Slice
	// produced) on the reused buffer: no comparator closure, no allocation.
	for i := 1; i < len(finished); i++ {
		a := finished[i]
		j := i - 1
		for j >= 0 && finished[j].r.ID > a.r.ID {
			finished[j+1] = finished[j]
			j--
		}
		finished[j+1] = a
	}
	for _, a := range finished {
		s.done++
		if s.lanes != nil {
			s.lanes.span("sojourn", "req"+strconv.Itoa(a.r.ID),
				int64(a.r.Arrival), int64(s.eng.Now()))
		}
		comp := Completion{Req: a.r, Finish: s.eng.Now(), Latency: s.eng.Now() - a.r.Arrival}
		s.free = append(s.free, a)
		if s.OnComplete != nil {
			s.OnComplete(comp)
		}
	}
	// Admit queued arrivals into freed hardware threads.
	for s.pending.len() > 0 && (s.MaxActive <= 0 || len(s.active) < s.MaxActive) {
		s.admit(s.pending.pop())
	}
	s.traceActive()
	s.reschedule()
}

// TimesliceServer is the legacy preemptive alternative: K servers running a
// software scheduler with a fixed Quantum; every quantum boundary that
// switches between different requests pays SwitchCost (register save/restore
// plus scheduler, §1). As Quantum → 0 it approaches PS but the switch
// overhead dominates; as Quantum → ∞ it degenerates to FCFS.
type TimesliceServer struct {
	eng        *sim.Shard
	K          int
	Quantum    sim.Cycles
	SwitchCost sim.Cycles
	OnComplete func(Completion)

	queue  ring[*tsReq]
	busy   int
	done   uint64
	sswaps uint64
	lanes  *laneSet
	// free recycles tsReq bodies; slicePool recycles slice-event callbacks
	// (at most K in flight), so steady-state timeslicing allocates nothing.
	free      []*tsReq
	slicePool []*tsSlice
}

type tsReq struct {
	r         workload.Request
	remaining sim.Cycles
}

// tsArrival is an allocation-free arrival event body; SubmitAll builds one
// arena of these per request batch.
type tsArrival struct {
	s *TimesliceServer
	r workload.Request
}

func (a *tsArrival) OnEvent() {
	s := a.s
	req := s.getReq()
	req.r = a.r
	req.remaining = a.r.Demand
	s.queue.push(req)
	s.dispatch()
}

// tsSlice is a pooled quantum-expiry event body: one per busy server.
type tsSlice struct {
	s     *TimesliceServer
	req   *tsReq
	slice sim.Cycles
}

func (s *TimesliceServer) getReq() *tsReq {
	if n := len(s.free); n > 0 {
		req := s.free[n-1]
		s.free = s.free[:n-1]
		return req
	}
	return &tsReq{}
}

func (s *TimesliceServer) getSlice() *tsSlice {
	if n := len(s.slicePool); n > 0 {
		ev := s.slicePool[n-1]
		s.slicePool = s.slicePool[:n-1]
		return ev
	}
	return &tsSlice{s: s}
}

// NewTimeslice builds a preemptive timeslicing server pool.
func NewTimeslice(eng *sim.Shard, k int, quantum, switchCost sim.Cycles, onComplete func(Completion)) *TimesliceServer {
	if k < 1 {
		k = 1
	}
	if quantum < 1 {
		quantum = 1
	}
	return &TimesliceServer{eng: eng, K: k, Quantum: quantum, SwitchCost: switchCost, OnComplete: onComplete}
}

// Name identifies the discipline.
func (s *TimesliceServer) Name() string { return "legacy-timeslice" }

// EnableTrace records one span per quantum (switch cost included) on greedy
// lanes under process, exposing the preemption pattern: a long request shows
// as a row of slices with other requests' slices interleaved between them.
func (s *TimesliceServer) EnableTrace(tr *trace.Tracer, process string) {
	if tr.Enabled() {
		s.lanes = &laneSet{tr: tr, process: process}
	}
}

// Completed returns finished request count; Switches the context switches.
func (s *TimesliceServer) Completed() uint64 { return s.done }

// Switches returns the number of context switches performed.
func (s *TimesliceServer) Switches() uint64 { return s.sswaps }

// Submit schedules the arrival.
func (s *TimesliceServer) Submit(r workload.Request) {
	s.eng.AtCallback(r.Arrival, "ts-arrival", &tsArrival{s: s, r: r})
}

// SubmitAll schedules every arrival in order with a single allocation (one
// arena of arrival callbacks), replacing a closure per request.
func (s *TimesliceServer) SubmitAll(reqs []workload.Request) {
	arr := make([]tsArrival, len(reqs))
	for i, r := range reqs {
		arr[i] = tsArrival{s: s, r: r}
		s.eng.AtCallback(r.Arrival, "ts-arrival", &arr[i])
	}
}

func (s *TimesliceServer) dispatch() {
	for s.busy < s.K && s.queue.len() > 0 {
		req := s.queue.pop()
		s.busy++
		s.runSlice(req)
	}
}

func (s *TimesliceServer) runSlice(req *tsReq) {
	slice := req.remaining
	if slice > s.Quantum {
		slice = s.Quantum
	}
	// Every dispatch pays the switch (the previous context must be saved
	// and this one restored — in the legacy world this is a software
	// context switch even when resuming the same request after others ran).
	s.sswaps++
	ev := s.getSlice()
	ev.req, ev.slice = req, slice
	s.eng.AfterCallback(s.SwitchCost+slice, "ts-slice", ev)
}

func (e *tsSlice) OnEvent() {
	s := e.s
	req, slice := e.req, e.slice
	e.req = nil
	s.slicePool = append(s.slicePool, e)
	if s.lanes != nil {
		now := int64(s.eng.Now())
		s.lanes.span("slice", "req"+strconv.Itoa(req.r.ID), now-int64(s.SwitchCost+slice), now)
	}
	req.remaining -= slice
	s.busy--
	if req.remaining <= 0 {
		s.done++
		comp := Completion{Req: req.r, Finish: s.eng.Now(), Latency: s.eng.Now() - req.r.Arrival}
		s.free = append(s.free, req)
		if s.OnComplete != nil {
			s.OnComplete(comp)
		}
	} else {
		s.queue.push(req)
	}
	s.dispatch()
}

// RunOpenLoop submits requests to a server and runs the engine to
// completion, returning the completions in finish order. All requests must
// have arrival times at or after the engine's current time.
func RunOpenLoop(eng *sim.Shard, srv QueueServer, reqs []workload.Request) []Completion {
	out := make([]Completion, 0, len(reqs))
	collect := func(c Completion) { out = append(out, c) }
	switch s := srv.(type) {
	case *FCFSServer:
		prev := s.OnComplete
		s.OnComplete = func(c Completion) {
			if prev != nil {
				prev(c)
			}
			collect(c)
		}
	case *PSServer:
		prev := s.OnComplete
		s.OnComplete = func(c Completion) {
			if prev != nil {
				prev(c)
			}
			collect(c)
		}
	case *TimesliceServer:
		prev := s.OnComplete
		s.OnComplete = func(c Completion) {
			if prev != nil {
				prev(c)
			}
			collect(c)
		}
	default:
		panic(fmt.Sprintf("kernel: unknown server type %T", srv))
	}
	if bs, ok := srv.(interface{ SubmitAll([]workload.Request) }); ok {
		bs.SubmitAll(reqs)
	} else {
		for _, r := range reqs {
			srv.Submit(r)
		}
	}
	eng.Run(0)
	return out
}
