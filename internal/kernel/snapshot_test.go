package kernel

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nocs/internal/faultinject"
	"nocs/internal/sim"
	"nocs/internal/snapshot"
	"nocs/internal/workload"
)

type compRec struct {
	id      int
	finish  sim.Cycles
	latency sim.Cycles
}

// buildQueueCase constructs one discipline on a fresh engine with a
// completion collector, plus the checkpoint components for it.
func buildQueueCase(kind string, eng *sim.Shard, faults bool, out *[]compRec) (QueueServer, []Component) {
	collect := func(c Completion) {
		*out = append(*out, compRec{c.Req.ID, c.Finish, c.Latency})
	}
	var inj *faultinject.Injector
	if faults {
		inj = faultinject.New(faultinject.Plan{Seed: 0xfa017, RequestFaultP: 0.05, RequestFaultPenalty: 1500})
	}
	switch kind {
	case "fcfs":
		s := NewFCFS(eng, 2, 120, collect)
		s.Faults = inj
		comps := []Component{{Name: "fcfs", C: s}}
		if inj != nil {
			comps = append(comps, FaultComponent("faults", inj))
		}
		return s, comps
	case "ps":
		s := NewPS(eng, 2, 60, collect)
		s.MaxActive = 6
		s.Faults = inj
		comps := []Component{{Name: "ps", C: s}}
		if inj != nil {
			comps = append(comps, FaultComponent("faults", inj))
		}
		return s, comps
	case "ts":
		s := NewTimeslice(eng, 2, 400, 90, collect)
		return s, []Component{{Name: "ts", C: s}}
	}
	panic("unknown kind " + kind)
}

func queueReqs() []workload.Request {
	rng := sim.NewRNG(11)
	arr := workload.NewPoissonArrivals(1000, rng)
	svc := workload.NewBimodal(600, 20000, 0.95, rng)
	return workload.Generate(300, 0, arr, svc)
}

// TestQueueServerSnapshotRoundTrip checkpoints each discipline mid-run —
// requests queued, in service, and still arriving; for the faulted variants
// the injector RNG cursor mid-stream — restores into a freshly built engine
// and server, and requires the continued completion stream to exactly extend
// the straight-through run's. Re-serializing the restored shard must give the
// original bytes (tombstones from PS's cancel-heavy rescheduling included).
func TestQueueServerSnapshotRoundTrip(t *testing.T) {
	const checkpoint = 120_000
	for _, kind := range []string{"fcfs", "ps", "ts"} {
		for _, faults := range []bool{false, true} {
			if kind == "ts" && faults {
				continue // timeslicing has no fault hook
			}
			name := kind
			if faults {
				name += "-faulted"
			}
			t.Run(name, func(t *testing.T) {
				reqs := queueReqs()

				// Straight-through reference stream.
				var full []compRec
				engR := sim.SoloShard(sim.NewEngine(nil))
				srvR, _ := buildQueueCase(kind, engR, faults, &full)
				srvR.(interface{ SubmitAll([]workload.Request) }).SubmitAll(reqs)
				engR.Run(0)

				// Checkpointed run: prefix on A, snapshot, suffix on B.
				var prefix []compRec
				engA := sim.SoloShard(sim.NewEngine(nil))
				srvA, compsA := buildQueueCase(kind, engA, faults, &prefix)
				srvA.(interface{ SubmitAll([]workload.Request) }).SubmitAll(reqs)
				engA.RunUntil(checkpoint)

				b := snapshot.NewBuilder()
				if err := SnapshotShard(b, engA, compsA...); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := b.WriteTo(&buf); err != nil {
					t.Fatal(err)
				}
				snap, err := snapshot.Decode(buf.Bytes())
				if err != nil {
					t.Fatal(err)
				}

				var suffix []compRec
				engB := sim.SoloShard(sim.NewEngine(nil))
				_, compsB := buildQueueCase(kind, engB, faults, &suffix)
				if err := RestoreShard(snap, engB, compsB...); err != nil {
					t.Fatal(err)
				}

				b2 := snapshot.NewBuilder()
				if err := SnapshotShard(b2, engB, compsB...); err != nil {
					t.Fatal(err)
				}
				var buf2 bytes.Buffer
				if _, err := b2.WriteTo(&buf2); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
					t.Fatalf("restored shard re-serializes to different bytes (%d vs %d)", buf.Len(), buf2.Len())
				}

				engB.Run(0)
				got := append(append([]compRec(nil), prefix...), suffix...)
				if !reflect.DeepEqual(got, full) {
					t.Fatalf("restored completion stream diverged: prefix %d + suffix %d vs full %d",
						len(prefix), len(suffix), len(full))
				}
				if engB.Now() != engR.Now() {
					t.Fatalf("restored run ended at cycle %d, straight-through at %d", engB.Now(), engR.Now())
				}
			})
		}
	}
}

// TestSnapshotShardUnclaimedEvent: a live event no component claims is a
// named checkpoint error, not a silent drop.
func TestSnapshotShardUnclaimedEvent(t *testing.T) {
	eng := sim.SoloShard(sim.NewEngine(nil))
	var sink []compRec
	_, comps := buildQueueCase("fcfs", eng, false, &sink)
	eng.After(10, "bench-glue", func() {})
	err := SnapshotShard(snapshot.NewBuilder(), eng, comps...)
	if err == nil || !strings.Contains(err.Error(), "bench-glue") {
		t.Fatalf("want unclaimed-event error naming bench-glue, got %v", err)
	}
}
