package kernel

import (
	"math"
	"testing"

	"nocs/internal/metrics"
	"nocs/internal/sim"
	"nocs/internal/workload"
)

// mm1Run drives an M/M/1 system through the given server constructor and
// returns the mean sojourn time.
func runMean(t *testing.T, srv QueueServer, eng *sim.Shard, reqs []workload.Request) float64 {
	t.Helper()
	comps := RunOpenLoop(eng, srv, reqs)
	if len(comps) != len(reqs) {
		t.Fatalf("completed %d of %d", len(comps), len(reqs))
	}
	var sum float64
	for _, c := range comps {
		sum += float64(c.Latency)
	}
	return sum / float64(len(comps))
}

func mm1Requests(n int, load float64, mean float64, seed uint64) []workload.Request {
	rng := sim.NewRNG(seed)
	arr := workload.NewPoissonArrivals(workload.MeanForLoad(load, mean, 1), rng)
	svc := workload.Exponential{M: mean, RNG: rng.Split()}
	return workload.Generate(n, 0, arr, svc)
}

func TestFCFSMatchesMM1Theory(t *testing.T) {
	// M/M/1 FCFS mean sojourn = 1/(mu - lambda). With mean service 1000 and
	// load 0.5: T = 1000/(1-0.5) = 2000.
	const n = 60000
	eng := sim.SoloShard(sim.NewEngine(nil))
	srv := NewFCFS(eng, 1, 0, nil)
	got := runMean(t, srv, eng, mm1Requests(n, 0.5, 1000, 42))
	want := 2000.0
	if math.Abs(got-want)/want > 0.06 {
		t.Fatalf("M/M/1 FCFS mean %v, theory %v", got, want)
	}
	if srv.Completed() != n {
		t.Fatal("completion count")
	}
}

func TestPSMatchesMM1Theory(t *testing.T) {
	// M/M/1 PS has the same mean sojourn as FCFS: 1/(mu - lambda).
	const n = 60000
	eng := sim.SoloShard(sim.NewEngine(nil))
	srv := NewPS(eng, 1, 0, nil)
	got := runMean(t, srv, eng, mm1Requests(n, 0.5, 1000, 43))
	want := 2000.0
	if math.Abs(got-want)/want > 0.06 {
		t.Fatalf("M/M/1 PS mean %v, theory %v", got, want)
	}
	if srv.Active() != 0 {
		t.Fatal("requests still active")
	}
}

func TestPSInsensitivity(t *testing.T) {
	// M/G/1-PS mean sojourn depends only on the service *mean* — the classic
	// insensitivity property. Exponential vs bimodal with equal means must
	// give (approximately) equal mean sojourn.
	const n, load = 60000, 0.6
	meanSvc := 3970.0 // bimodal 0.99*1000 + 0.01*298000 = 3970

	rng := sim.NewRNG(7)
	arr := workload.NewPoissonArrivals(workload.MeanForLoad(load, meanSvc, 1), rng)
	bim := workload.NewBimodal(1000, 298000, 0.99, rng.Split())
	reqsB := workload.Generate(n, 0, arr, bim)

	rng2 := sim.NewRNG(8)
	arr2 := workload.NewPoissonArrivals(workload.MeanForLoad(load, meanSvc, 1), rng2)
	exp := workload.Exponential{M: meanSvc, RNG: rng2.Split()}
	reqsE := workload.Generate(n, 0, arr2, exp)

	engB := sim.SoloShard(sim.NewEngine(nil))
	meanB := runMean(t, NewPS(engB, 1, 0, nil), engB, reqsB)
	engE := sim.SoloShard(sim.NewEngine(nil))
	meanE := runMean(t, NewPS(engE, 1, 0, nil), engE, reqsE)

	if math.Abs(meanB-meanE)/meanE > 0.15 {
		t.Fatalf("PS insensitivity violated: bimodal %v vs exponential %v", meanB, meanE)
	}
}

func TestFCFSHeadOfLineBlockingUnderHighVariability(t *testing.T) {
	// The paper's §4 claim: PS + thread-per-request beats FCFS for
	// high-variability service. Under a 99:1 bimodal, the FCFS p99 must be
	// far worse than PS p99 for *short* requests (head-of-line blocking).
	const n, load = 40000, 0.7
	meanSvc := 0.99*1000 + 0.01*100000

	gen := func(seed uint64) []workload.Request {
		rng := sim.NewRNG(seed)
		arr := workload.NewPoissonArrivals(workload.MeanForLoad(load, meanSvc, 1), rng)
		svc := workload.NewBimodal(1000, 100000, 0.99, rng.Split())
		return workload.Generate(n, 0, arr, svc)
	}

	p99 := func(srv QueueServer, eng *sim.Shard, reqs []workload.Request) int64 {
		h := metrics.NewHistogram()
		for _, c := range RunOpenLoop(eng, srv, reqs) {
			if c.Req.Demand == 1000 { // short requests only
				h.RecordCycles(c.Latency)
			}
		}
		return h.Quantile(0.99)
	}

	engF := sim.SoloShard(sim.NewEngine(nil))
	fcfs := p99(NewFCFS(engF, 1, 0, nil), engF, gen(11))
	engP := sim.SoloShard(sim.NewEngine(nil))
	ps := p99(NewPS(engP, 1, 0, nil), engP, gen(11))

	if fcfs < 3*ps {
		t.Fatalf("expected FCFS p99 >> PS p99 for shorts; got FCFS=%d PS=%d", fcfs, ps)
	}
}

func TestTimesliceApproachesFCFSWithHugeQuantum(t *testing.T) {
	reqs := mm1Requests(20000, 0.5, 1000, 13)
	engA := sim.SoloShard(sim.NewEngine(nil))
	fcfs := runMean(t, NewFCFS(engA, 1, 0, nil), engA, append([]workload.Request(nil), reqs...))
	engB := sim.SoloShard(sim.NewEngine(nil))
	ts := NewTimeslice(engB, 1, 1<<40, 0, nil)
	tsMean := runMean(t, ts, engB, append([]workload.Request(nil), reqs...))
	if math.Abs(fcfs-tsMean)/fcfs > 0.01 {
		t.Fatalf("huge-quantum timeslice %v != FCFS %v", tsMean, fcfs)
	}
}

func TestTimesliceSwitchCostHurts(t *testing.T) {
	reqs := mm1Requests(20000, 0.6, 3000, 17)
	run := func(switchCost sim.Cycles) float64 {
		eng := sim.SoloShard(sim.NewEngine(nil))
		srv := NewTimeslice(eng, 1, 1000, switchCost, nil)
		return runMean(t, srv, eng, append([]workload.Request(nil), reqs...))
	}
	free := run(0)
	costly := run(1200)
	if costly <= free {
		t.Fatalf("switch cost did not hurt: %v vs %v", costly, free)
	}
}

func TestTimesliceCountsSwitches(t *testing.T) {
	eng := sim.SoloShard(sim.NewEngine(nil))
	srv := NewTimeslice(eng, 1, 100, 10, nil)
	// One request of demand 250 = 3 slices.
	reqs := []workload.Request{{ID: 0, Arrival: 1, Demand: 250}}
	RunOpenLoop(eng, srv, reqs)
	if srv.Switches() != 3 || srv.Completed() != 1 {
		t.Fatalf("switches=%d completed=%d", srv.Switches(), srv.Completed())
	}
}

func TestMultiServerFCFS(t *testing.T) {
	// Two simultaneous arrivals on 2 servers complete in parallel.
	eng := sim.SoloShard(sim.NewEngine(nil))
	srv := NewFCFS(eng, 2, 0, nil)
	reqs := []workload.Request{
		{ID: 0, Arrival: 1, Demand: 1000},
		{ID: 1, Arrival: 1, Demand: 1000},
	}
	comps := RunOpenLoop(eng, srv, reqs)
	for _, c := range comps {
		if c.Latency != 1000 {
			t.Fatalf("latency %v with free server", c.Latency)
		}
	}
}

func TestPSCapacityNoSharingBelowC(t *testing.T) {
	// With n <= C, everyone runs at full rate.
	eng := sim.SoloShard(sim.NewEngine(nil))
	srv := NewPS(eng, 4, 0, nil)
	var reqs []workload.Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, workload.Request{ID: i, Arrival: 1, Demand: 1000})
	}
	comps := RunOpenLoop(eng, srv, reqs)
	for _, c := range comps {
		if c.Latency != 1000 {
			t.Fatalf("latency %v, want 1000 (no sharing below capacity)", c.Latency)
		}
	}
}

func TestPSEqualSharingAboveC(t *testing.T) {
	// 2 equal requests on capacity 1 arriving together: each sees ~2x demand.
	eng := sim.SoloShard(sim.NewEngine(nil))
	srv := NewPS(eng, 1, 0, nil)
	reqs := []workload.Request{
		{ID: 0, Arrival: 1, Demand: 1000},
		{ID: 1, Arrival: 1, Demand: 1000},
	}
	comps := RunOpenLoop(eng, srv, reqs)
	for _, c := range comps {
		if c.Latency < 1990 || c.Latency > 2010 {
			t.Fatalf("latency %v, want ~2000", c.Latency)
		}
	}
}

func TestOverheadAppliedOncePerRequest(t *testing.T) {
	eng := sim.SoloShard(sim.NewEngine(nil))
	srv := NewFCFS(eng, 1, 500, nil)
	comps := RunOpenLoop(eng, srv, []workload.Request{{ID: 0, Arrival: 1, Demand: 1000}})
	if comps[0].Latency != 1500 {
		t.Fatalf("latency %v, want 1500", comps[0].Latency)
	}
	engP := sim.SoloShard(sim.NewEngine(nil))
	ps := NewPS(engP, 1, 70, nil)
	compsP := RunOpenLoop(engP, ps, []workload.Request{{ID: 0, Arrival: 1, Demand: 1000}})
	if compsP[0].Latency != 1070 {
		t.Fatalf("PS latency %v, want 1070", compsP[0].Latency)
	}
}

func TestServerNames(t *testing.T) {
	eng := sim.SoloShard(sim.NewEngine(nil))
	if NewFCFS(eng, 1, 0, nil).Name() != "legacy-fcfs" ||
		NewPS(eng, 1, 0, nil).Name() != "nocs-ps" ||
		NewTimeslice(eng, 1, 1, 0, nil).Name() != "legacy-timeslice" {
		t.Fatal("names")
	}
}

func TestRunOpenLoopPreservesUserCallback(t *testing.T) {
	eng := sim.SoloShard(sim.NewEngine(nil))
	userCalls := 0
	srv := NewFCFS(eng, 1, 0, func(Completion) { userCalls++ })
	comps := RunOpenLoop(eng, srv, []workload.Request{{ID: 0, Arrival: 1, Demand: 10}})
	if userCalls != 1 || len(comps) != 1 {
		t.Fatalf("userCalls=%d comps=%d", userCalls, len(comps))
	}
}

func TestRunOpenLoopUnknownServerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown server accepted")
		}
	}()
	type fake struct{ QueueServer }
	RunOpenLoop(sim.SoloShard(sim.NewEngine(nil)), fake{}, nil)
}

func TestClampsAndDefaults(t *testing.T) {
	eng := sim.SoloShard(sim.NewEngine(nil))
	if NewFCFS(eng, 0, 0, nil).K != 1 {
		t.Fatal("FCFS k clamp")
	}
	if NewPS(eng, -1, 0, nil).C != 1 {
		t.Fatal("PS c clamp")
	}
	ts := NewTimeslice(eng, 0, 0, 0, nil)
	if ts.K != 1 || ts.Quantum != 1 {
		t.Fatal("timeslice clamps")
	}
}
