package kernel_test

import (
	"fmt"
	"testing"

	"nocs/internal/asm"
	"nocs/internal/device"
	"nocs/internal/hwthread"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/sim"
	"nocs/internal/ukernel"
)

func blockRig(t *testing.T, slots int) (*machine.Machine, *kernel.BlockDev) {
	t.Helper()
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	ssd, err := m.NewSSD(device.SSDConfig{
		SQBase: 0x400000, CQBase: 0x410000,
		DoorbellAddr: 0x9000_0000, CQTailAddr: 0x420000,
		BaseLatency: 2000, PerWord: 2,
	}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := kernel.NewBlockDev(k, ssd, 0x430000, slots)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0) // park driver
	return m, bd
}

func TestBlockDevValidation(t *testing.T) {
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	ssd, err := m.NewSSD(device.SSDConfig{
		SQBase: 0x400000, CQBase: 0x410000,
		DoorbellAddr: 0x9000_0000, CQTailAddr: 0x420000,
		Entries: 4,
	}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kernel.NewBlockDev(k, ssd, 0x430000, 0); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := kernel.NewBlockDev(k, ssd, 0x430000, 8); err == nil {
		t.Fatal("slots beyond queue depth accepted")
	}
}

func TestBlockDevSingleRead(t *testing.T) {
	m, bd := blockRig(t, 2)
	src := fmt.Sprintf(`
main:
	movi r2, %d    ; OpRead
	movi r3, 1234  ; LBA
%s
	mov r9, r1     ; status (0 = ok)
	movi r9, 1
	halt
`, device.OpRead, ukernel.ClientCallSource("bd"))
	prog := asm.MustAssemble("u", src)
	m.Core(0).BindProgram(0, prog, "main")
	bd.SetupClientRegs(m.Core(0).Threads().Context(0), 0)
	start := m.Now()
	m.Core(0).BootStart(0)
	m.Run(0)
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	ctx := m.Core(0).Threads().Context(0)
	if ctx.State != hwthread.Disabled || ctx.Regs.GPR[9] != 1 {
		t.Fatalf("client stuck: %v", ctx.State)
	}
	reads, writes, errs, inFlight := bd.Stats()
	if reads != 1 || writes != 0 || errs != 0 || inFlight != 0 {
		t.Fatalf("stats %d/%d/%d/%d", reads, writes, errs, inFlight)
	}
	// The blocking read must take at least the device time.
	if m.Now()-start < 2000 {
		t.Fatalf("IO too fast: %v", m.Now()-start)
	}
}

func TestBlockDevConcurrentClients(t *testing.T) {
	m, bd := blockRig(t, 3)
	src := fmt.Sprintf(`
main:
	movi r2, %d
	mov r3, r12
%s
	movi r9, 1
	halt
`, device.OpRead, ukernel.ClientCallSource("bd"))
	prog := asm.MustAssemble("u", src)
	for i := 0; i < 3; i++ {
		p := hwthread.PTID(i)
		m.Core(0).BindProgram(p, prog, "main")
		ctx := m.Core(0).Threads().Context(p)
		bd.SetupClientRegs(ctx, i)
		ctx.Regs.GPR[12] = int64(1000 * (i + 1))
		m.Core(0).BootStart(p)
	}
	m.Run(0)
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	for i := 0; i < 3; i++ {
		ctx := m.Core(0).Threads().Context(hwthread.PTID(i))
		if ctx.Regs.GPR[9] != 1 {
			t.Fatalf("client %d stuck", i)
		}
	}
	reads, _, errs, inFlight := bd.Stats()
	if reads != 3 || errs != 0 || inFlight != 0 {
		t.Fatalf("stats %d/%d/%d", reads, errs, inFlight)
	}
}

func TestBlockDevRepeatedIOsOverlapDeviceTime(t *testing.T) {
	// Two clients issuing back-to-back reads: the device pipeline overlaps
	// their commands, so total time is well under 2× sequential.
	m, bd := blockRig(t, 2)
	const iosPerClient = 5
	src := fmt.Sprintf(`
main:
	movi r7, 0
loop:
	movi r2, %d
	mov r3, r7
%s
	addi r7, r7, 1
	movi r8, %d
	blt r7, r8, loop
	halt
`, device.OpRead, ukernel.ClientCallSource("bd"), iosPerClient)
	prog := asm.MustAssemble("u", src)
	for i := 0; i < 2; i++ {
		p := hwthread.PTID(i)
		m.Core(0).BindProgram(p, prog, "main")
		bd.SetupClientRegs(m.Core(0).Threads().Context(p), i)
		m.Core(0).BootStart(p)
	}
	start := m.Now()
	m.Run(0)
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	reads, _, _, _ := bd.Stats()
	if reads != 2*iosPerClient {
		t.Fatalf("reads %d", reads)
	}
	elapsed := m.Now() - start
	sequential := sim.Cycles(2 * iosPerClient * 2016)
	if elapsed >= sequential {
		t.Fatalf("no overlap: %v >= %v", elapsed, sequential)
	}
}

func TestBlockDevWriteCounted(t *testing.T) {
	m, bd := blockRig(t, 1)
	src := fmt.Sprintf(`
main:
	movi r2, %d
	movi r3, 77
%s
	movi r9, 1
	halt
`, device.OpWrite, ukernel.ClientCallSource("bd"))
	prog := asm.MustAssemble("u", src)
	m.Core(0).BindProgram(0, prog, "main")
	bd.SetupClientRegs(m.Core(0).Threads().Context(0), 0)
	m.Core(0).BootStart(0)
	m.Run(0)
	_, writes, _, _ := bd.Stats()
	if writes != 1 {
		t.Fatalf("writes %d", writes)
	}
}
