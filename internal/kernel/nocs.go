package kernel

import (
	"fmt"

	"nocs/internal/asm"
	"nocs/internal/core"
	"nocs/internal/hwthread"
	"nocs/internal/isa"
	"nocs/internal/sim"
)

// Nocs is the paper's kernel personality. Kernel services are dedicated
// hardware threads parked in monitor/mwait; there are no interrupts, no
// in-thread mode switches, and no software context switches on the request
// path. SYSCALL and faults write exception descriptors (the core is left in
// descriptor mode — do not install a LegacySyscall hook on the same core).
type Nocs struct {
	c *core.Core
	// DispatchCost is the syscall-service demultiplex cost (counterpart of
	// Legacy.DispatchCost, so F3 compares mechanisms, not handler code).
	DispatchCost sim.Cycles

	table     map[int64]SyscallFn
	btable    map[int64]BlockingSyscallFn
	nextPtid  hwthread.PTID
	syscalls  uint64
	unknown   uint64
	services  int
	nativeSeq int
	reArms    uint64
	// svcParked holds each service thread's "last blocked in mwait" flag,
	// indexed by spawn order. Kept here rather than in per-service closure
	// state so the kernel's dynamic state is checkpointable (DESIGN.md §13).
	svcParked []bool
}

// NewNocs installs the nocs personality on a core. Hardware threads are
// allocated from the top of the ptid space downward so low ptids remain
// free for application use.
func NewNocs(c *core.Core) *Nocs {
	return &Nocs{
		c:            c,
		DispatchCost: 50,
		table:        make(map[int64]SyscallFn),
		btable:       make(map[int64]BlockingSyscallFn),
		nextPtid:     hwthread.PTID(c.Threads().Len() - 1),
	}
}

// Core returns the kernel's core.
func (k *Nocs) Core() *core.Core { return k.c }

// RegisterSyscall binds number to fn (shared table with ServeSyscalls).
func (k *Nocs) RegisterSyscall(num int64, fn SyscallFn) { k.table[num] = fn }

// BlockingSyscallFn is a syscall that may park its caller: returning
// park=true leaves the calling thread disabled (it was disabled by the
// SYSCALL descriptor write) instead of restarting it — the exception-less
// blocking path. A later Unpark resumes it. park=false behaves exactly
// like a plain syscall.
type BlockingSyscallFn func(t *hwthread.Context, args [4]int64) (park bool, ret int64, cost sim.Cycles)

// RegisterBlockingSyscall binds number to a syscall that may park its
// caller (futex-style waits, DESIGN.md §14).
func (k *Nocs) RegisterBlockingSyscall(num int64, fn BlockingSyscallFn) { k.btable[num] = fn }

// Unpark resumes a thread parked by a blocking syscall: after the given
// delay its r1 is set to ret and it is restarted. The ptid must still be
// disabled when the delay elapses (nothing else restarts parked callers).
func (k *Nocs) Unpark(p hwthread.PTID, ret int64, after sim.Cycles) {
	user := k.c.Threads().Context(p)
	if user == nil {
		panic(fmt.Sprintf("kernel: unpark of unknown ptid %d", p))
	}
	k.c.Shard().After(after, "syscall-unpark", func() {
		user.Regs.GPR[1] = ret
		if err := k.c.StartThreadSupervised(p); err != nil {
			panic(err)
		}
	})
}

// Syscalls returns (handled, unknown) counts.
func (k *Nocs) Syscalls() (handled, unknown uint64) { return k.syscalls, k.unknown }

// AllocPtid hands out a kernel hardware thread.
func (k *Nocs) AllocPtid() (hwthread.PTID, error) {
	if k.nextPtid < 0 {
		return 0, fmt.Errorf("kernel: out of hardware threads")
	}
	p := k.nextPtid
	k.nextPtid--
	return p, nil
}

// ServiceFunc is a kernel service body. It is invoked on the service's
// hardware thread whenever one of its watched addresses is written, and
// returns its processing cost. Returning 0 means "no work found": only then
// does the service park in mwait. A non-zero cost keeps the thread runnable
// for that many (pipeline-shared) cycles and re-enters the body afterwards,
// so service work genuinely occupies the hardware thread — requests queue
// behind it exactly as they would on real hardware.
type ServiceFunc func(t *hwthread.Context) sim.Cycles

// SpawnService creates a dedicated kernel hardware thread that services
// events on the watched addresses — the paper's "designate a hardware thread
// per core per interrupt type" (§2), generalized. watch is re-evaluated
// before each park so services can watch dynamic address sets.
//
// The service thread runs supervisor-mode assembly:
//
//	loop: native <svc>   ; handler + re-arm + mwait (blocks inside native)
//	      jmp loop
func (k *Nocs) SpawnService(name string, watch func() []int64, fn ServiceFunc) (hwthread.PTID, error) {
	p, err := k.AllocPtid()
	if err != nil {
		return 0, err
	}
	k.nativeSeq++
	sym := fmt.Sprintf("nocs.svc.%d.%s", k.nativeSeq, name)
	svc := len(k.svcParked) // true while the service last blocked in mwait
	k.svcParked = append(k.svcParked, false)
	k.c.RegisterNative(sym, func(c *core.Core, t *hwthread.Context) sim.Cycles {
		fromPark := k.svcParked[svc]
		k.svcParked[svc] = false
		// Race-free doorbell idiom: arm BEFORE draining, so a write that
		// lands while fn processes is caught by the monitor pending flag
		// and the eventual WaitArmed completes immediately instead of
		// sleeping through it.
		c.ArmWatches(t, watch()...)
		cost := fn(t)
		if t.State != hwthread.Runnable {
			// fn blocked or stopped the thread itself.
			return cost
		}
		if cost > 0 {
			// Work was done: charge it and loop back to re-check. Parking
			// here would erase the processing time (a blocked thread's
			// pending instruction cost is never charged), letting the
			// service do work in zero virtual time.
			return cost
		}
		if fromPark {
			// The service was woken out of mwait and found no work: a
			// spurious (or already-coalesced) wakeup. The graceful response
			// is exactly this pass — the watches were re-armed above and
			// the thread parks again below; count it as evidence.
			k.reArms++
		}
		if c.WaitArmed(t) {
			k.svcParked[svc] = true
		}
		// Blocked: the thread re-enters this native on wakeup.
		// Not blocked (write landed since arming): re-enter immediately.
		return cost
	})
	prog := asm.MustAssemble(sym, fmt.Sprintf("loop:\n\tnative %s\n\tjmp loop\n", sym))
	if err := k.c.BindProgram(p, prog, "loop"); err != nil {
		return 0, err
	}
	t := k.c.Threads().Context(p)
	t.Regs.Mode = 1 // kernel services run in supervisor mode
	k.services++
	if err := k.c.BootStart(p); err != nil {
		return 0, err
	}
	return p, nil
}

// Services returns the number of spawned service threads.
func (k *Nocs) Services() int { return k.services }

// ReArms counts service passes that woke from mwait, found no work, and
// re-armed — the kernel's graceful response to spurious or stale-coalesced
// wakeups. Benign arm-before-drain races also land here; under a fault
// plan the count grows with injected spurious wakes.
func (k *Nocs) ReArms() uint64 { return k.reArms }

// ServeSyscalls spawns the dedicated syscall-service thread (§2
// "Exception-less System Calls"): it watches the exception-descriptor
// doorbells of the given user threads; when a user executes SYSCALL the
// hardware writes an ExcSyscall descriptor and disables the user; the
// service wakes, executes the call, writes the result into the user's r1
// via the remote-register mechanism, clears the doorbell, and restarts the
// user thread. Each user ptid is assigned a descriptor slot at
// descBase + 64*i and its EDP is set accordingly.
func (k *Nocs) ServeSyscalls(users []hwthread.PTID, descBase int64) (hwthread.PTID, error) {
	doorbells := make([]int64, len(users))
	for i, u := range users {
		t := k.c.Threads().Context(u)
		if t == nil {
			return 0, fmt.Errorf("kernel: no user ptid %d", u)
		}
		edp := descBase + int64(i)*64
		t.Regs.EDP = edp
		doorbells[i] = edp + hwthread.DescCauseOff
	}
	watch := func() []int64 { return doorbells }
	return k.SpawnService("syscall", watch, func(t *hwthread.Context) sim.Cycles {
		var cost sim.Cycles
		for i, u := range users {
			u := u
			edp := descBase + int64(i)*64
			d := hwthread.ReadDescriptor(k.c.Mem(), edp)
			if d.Cause != hwthread.ExcSyscall {
				continue
			}
			// Clear immediately so a re-scan cannot double-serve the call.
			hwthread.ClearDescriptor(k.c.Mem(), edp)
			cost += k.DispatchCost
			user := k.c.Threads().Context(u)
			args := [4]int64{user.Regs.GPR[2], user.Regs.GPR[3], user.Regs.GPR[4], user.Regs.GPR[5]}
			if bfn, ok := k.btable[d.Info]; ok {
				park, ret, sysCost := bfn(user, args)
				cost += sysCost
				k.syscalls++
				if park {
					// The caller stays disabled until Unpark; blocking cost
					// one descriptor write, not a context switch.
					continue
				}
				cost += k.c.Costs().ThreadOp
				k.c.Shard().After(cost, "syscall-done", func() {
					user.Regs.GPR[1] = ret
					if err := k.c.StartThreadSupervised(u); err != nil {
						panic(err)
					}
				})
				continue
			}
			fn, ok := k.table[d.Info]
			ret := int64(-1)
			if ok {
				var sysCost sim.Cycles
				ret, sysCost = fn(user, args)
				cost += sysCost
				k.syscalls++
			} else {
				k.unknown++
			}
			cost += k.c.Costs().ThreadOp // the start instruction
			// The user resumes only after the service has actually executed
			// the call: result delivery and restart land at +cost, not at
			// wake time.
			k.c.Shard().After(cost, "syscall-done", func() {
				user.Regs.GPR[1] = ret
				if err := k.c.StartThreadSupervised(u); err != nil {
					panic(err) // user threads were validated above
				}
			})
		}
		return cost
	})
}

// ServeDevice spawns an event thread for a device queue (§2 "Fast I/O
// without Inefficient Polling"): it watches tailAddr, and on each wake
// drains seq numbers head..tail, charging perEvent cycles and invoking
// onEvent with each event's *completion* time (wake time plus the
// processing of it and everything queued ahead of it). The consumption
// count is published to headAddr (if non-zero) for device flow control.
func (k *Nocs) ServeDevice(name string, tailAddr, headAddr int64, perEvent sim.Cycles,
	onEvent func(seq int64, at sim.Cycles)) (hwthread.PTID, error) {
	if headAddr == 0 {
		return 0, fmt.Errorf("kernel: device service %q needs a head counter address", name)
	}
	return k.SpawnService(name, func() []int64 { return []int64{tailAddr} },
		func(t *hwthread.Context) sim.Cycles {
			var head int64
			if headAddr != 0 {
				head = k.c.ReadWord(headAddr)
			}
			tail := k.c.ReadWord(tailAddr)
			if tail == head {
				return 0 // empty pass: park
			}
			cost := k.c.AccessCost(tailAddr)
			for seq := head; seq < tail; seq++ {
				cost += perEvent
				if onEvent != nil {
					onEvent(seq, k.c.Now()+cost)
				}
			}
			if headAddr != 0 && tail != head {
				k.c.WriteWord(headAddr, tail)
			}
			return cost
		})
}

// SpawnRequest runs a synthetic request of the given demand on a dedicated
// hardware thread (§2 "Simpler Distributed Programming": one hardware
// thread per request with blocking semantics). The demand is consumed in
// quantum-sized native steps so the pipeline's processor sharing applies
// continuously. onDone is called with the completion time.
//
// The ptid is reserved by the caller (use AllocPtid or application-owned
// ptids) and is left disabled after completion for reuse.
type RequestRunner struct {
	k       *Nocs
	quantum sim.Cycles
	sym     string
	// remaining demand per ptid
	remaining map[hwthread.PTID]sim.Cycles
	onDone    map[hwthread.PTID]func(at sim.Cycles)
	prog      *isa.Program
}

// NewRequestRunner builds the request execution machinery with the given
// work quantum (smaller quanta track PS sharing more precisely; default 200).
func (k *Nocs) NewRequestRunner(quantum sim.Cycles) *RequestRunner {
	if quantum < 1 {
		quantum = 200
	}
	k.nativeSeq++
	sym := fmt.Sprintf("nocs.req.%d", k.nativeSeq)
	r := &RequestRunner{
		k: k, quantum: quantum, sym: sym,
		remaining: make(map[hwthread.PTID]sim.Cycles),
		onDone:    make(map[hwthread.PTID]func(at sim.Cycles)),
	}
	k.c.RegisterNative(sym, func(c *core.Core, t *hwthread.Context) sim.Cycles {
		rem := r.remaining[t.PTID]
		step := r.quantum
		if rem < step {
			step = rem
		}
		rem -= step
		r.remaining[t.PTID] = rem
		if rem <= 0 {
			// Done. The final quantum still occupies the pipeline for its
			// contention-scaled time; the thread is disabled (and the
			// completion delivered) exactly when that time elapses, so the
			// worker is reusable from the callback but never vanishes from
			// the SMT slots early.
			fin := c.Pipeline().ChargedLatency(int(t.PTID), step)
			fn := r.onDone[t.PTID]
			delete(r.onDone, t.PTID)
			c.Shard().After(fin, "req-done", func() {
				c.StopThread(t.PTID)
				if fn != nil {
					fn(c.Now())
				}
			})
		}
		return step
	})
	r.prog = asm.MustAssemble(sym, fmt.Sprintf(`
entry:
	native %s
	jmp entry
`, sym))
	return r
}

// Start launches a request of the given demand on ptid. The ptid must be
// disabled (fresh or completed).
func (r *RequestRunner) Start(p hwthread.PTID, demand sim.Cycles, onDone func(at sim.Cycles)) error {
	t := r.k.c.Threads().Context(p)
	if t == nil {
		return fmt.Errorf("kernel: no ptid %d", p)
	}
	if t.State != hwthread.Disabled {
		return fmt.Errorf("kernel: ptid %d is %v, want disabled", p, t.State)
	}
	if err := r.k.c.BindProgram(p, r.prog, "entry"); err != nil {
		return err
	}
	if demand < 1 {
		demand = 1
	}
	r.remaining[p] = demand
	r.onDone[p] = onDone
	return r.k.c.StartThreadSupervised(p)
}
