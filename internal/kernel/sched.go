package kernel

import (
	"container/heap"
	"fmt"

	"nocs/internal/hwthread"
	"nocs/internal/sim"
)

// Task is a unit of work for the nocs Scheduler.
type Task struct {
	// Demand is the task's execution demand in cycles.
	Demand sim.Cycles
	// Priority orders dispatch (higher first) and sets the hardware
	// priority of the worker thread while the task runs (≥1).
	Priority int
	// OnDone is called at completion time.
	OnDone func(at sim.Cycles)

	seq uint64 // FIFO tie-break
}

// taskHeap orders by priority desc, then submission order.
type taskHeap []Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(Task)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// Scheduler is the paper's §4 OS scheduler: instead of multiplexing software
// threads onto hardware threads, it "enforce[s] software policies by
// starting and stopping hardware threads and setting their priorities". It
// is itself a hardware thread parked in mwait on its ready doorbell, so it
// reacts to new work at wakeup latency — §4's "the scheduler will run in
// much tighter loops" — rather than at the next timer tick.
//
// When tasks outnumber workers, the overflow queues in software by priority:
// the rare case the paper likens to "swapping memory pages to disk".
type Scheduler struct {
	k        *Nocs
	runner   *RequestRunner
	doorbell int64

	workers []hwthread.PTID
	free    []hwthread.PTID
	pending taskHeap
	seq     uint64

	dispatched uint64
	completed  uint64
	maxQueue   int
	schedCost  sim.Cycles
}

// NewScheduler builds a scheduler over the given worker hardware threads.
// doorbell is a free memory word used as the ready signal; quantum is the
// work-chunk granularity (see NewRequestRunner).
func NewScheduler(k *Nocs, workers []hwthread.PTID, doorbell int64, quantum sim.Cycles) (*Scheduler, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("kernel: scheduler needs at least one worker")
	}
	s := &Scheduler{
		k:         k,
		runner:    k.NewRequestRunner(quantum),
		doorbell:  doorbell,
		workers:   append([]hwthread.PTID(nil), workers...),
		free:      append([]hwthread.PTID(nil), workers...),
		schedCost: 60, // the §4 tight-loop decision cost
	}
	_, err := k.SpawnService("scheduler", func() []int64 { return []int64{doorbell} },
		func(t *hwthread.Context) sim.Cycles {
			if s.k.Core().ReadWord(doorbell) == 0 {
				return 0
			}
			s.k.Core().WriteWord(doorbell, 0)
			return s.dispatch()
		})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Submit enqueues a task and rings the scheduler's doorbell. Call from
// simulation events (arrival processes, completion callbacks).
func (s *Scheduler) Submit(t Task) {
	if t.Priority < 1 {
		t.Priority = 1
	}
	t.seq = s.seq
	s.seq++
	heap.Push(&s.pending, t)
	if len(s.pending) > s.maxQueue {
		s.maxQueue = len(s.pending)
	}
	// Ring the doorbell: the scheduler thread wakes through the monitor.
	s.k.Core().WriteWord(s.doorbell, 1)
}

// dispatch assigns queued tasks to free workers, highest priority first.
func (s *Scheduler) dispatch() sim.Cycles {
	var cost sim.Cycles
	for len(s.free) > 0 && s.pending.Len() > 0 {
		task := heap.Pop(&s.pending).(Task)
		w := s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		cost += s.schedCost + s.k.Core().Costs().ThreadOp

		ctx := s.k.Core().Threads().Context(w)
		ctx.Priority = task.Priority
		onDone := task.OnDone
		if err := s.runner.Start(w, task.Demand, func(at sim.Cycles) {
			s.completed++
			s.free = append(s.free, w)
			if onDone != nil {
				onDone(at)
			}
			// A worker freed: more queued work may now be placeable.
			if s.pending.Len() > 0 {
				s.k.Core().WriteWord(s.doorbell, 1)
			}
		}); err != nil {
			// Worker unexpectedly busy: put everything back and stop.
			s.free = append(s.free, w)
			heap.Push(&s.pending, task)
			break
		}
		s.dispatched++
	}
	return cost
}

// Stats returns (dispatched, completed, peak queue depth).
func (s *Scheduler) Stats() (dispatched, completed uint64, maxQueue int) {
	return s.dispatched, s.completed, s.maxQueue
}

// Queued returns the current software-queue depth (the overflow the paper
// wants to be rare).
func (s *Scheduler) Queued() int { return s.pending.Len() }

// FreeWorkers returns the number of idle worker hardware threads.
func (s *Scheduler) FreeWorkers() int { return len(s.free) }
