package kernel

import (
	"fmt"
	"sort"

	"nocs/internal/faultinject"
	"nocs/internal/hwthread"
	"nocs/internal/sim"
	"nocs/internal/snapshot"
	"nocs/internal/workload"
)

// Checkpoint support (DESIGN.md §13) for the queueing servers. Each server
// serializes its ring FIFO, counters, and every live event it owns: pending
// arrivals, in-flight completions or quantum slices, and the PS next-finisher.
// Arrival bodies are arena-allocated without retained handles, so the codec
// reclaims them through the engine's VisitLiveEvents enumeration — the owner
// recognizes its own payload types among the live events — instead of paying
// per-event handle bookkeeping on the hot path. Freelists and event pools are
// capacity, not state: they restore empty and re-grow.
//
// Trace lanes (EnableTrace) are wiring and re-base like every other tracer;
// OnComplete callbacks are re-attached by the restore target's driver.

// ComponentCodec is a checkpointable standalone-shard component: a queueing
// server or anything else composed into a shard checkpoint by SnapshotShard.
type ComponentCodec interface {
	SnapshotState(w *snapshot.W) error
	RestoreState(r *snapshot.R) error
	// ClaimEvents marks the sequence numbers of every live event this
	// component owns (and will re-create on restore) in the engine's
	// claimed set.
	ClaimEvents(claimed map[uint64]bool)
}

// Component pairs a section name with a checkpointable component.
type Component struct {
	Name string
	C    ComponentCodec
}

// SnapshotShard serializes a bare shard — engine clock, counters, tombstones
// — plus the given components into b. This is the standalone composition the
// queueing experiments use (they run on a solo shard, not inside a Machine):
// one "engine" section plus one "srv/<name>" section per component. A live
// event no component claims is an error naming the event.
func SnapshotShard(b *snapshot.Builder, eng *sim.Shard, comps ...Component) error {
	claimed := make(map[uint64]bool)
	for _, c := range comps {
		c.C.ClaimEvents(claimed)
	}
	for _, c := range comps {
		if err := c.C.SnapshotState(b.Section("srv/" + c.Name)); err != nil {
			return fmt.Errorf("kernel: snapshot %s: %w", c.Name, err)
		}
	}
	now, seq, ran, tombs, err := eng.SnapshotEvents(claimed)
	if err != nil {
		return err
	}
	w := b.Section("engine")
	w.I64(int64(now)).U64(seq).U64(ran)
	w.Len(len(tombs))
	for _, t := range tombs {
		w.I64(int64(t.At)).U64(t.Seq).String(t.Name)
	}
	return nil
}

// RestoreShard rebuilds a shard checkpoint written by SnapshotShard into a
// freshly constructed (or rewound) engine and identically constructed
// components.
func RestoreShard(snap *snapshot.Snapshot, eng *sim.Shard, comps ...Component) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("kernel: restore: %v", p)
		}
	}()
	er, err := snap.Section("engine")
	if err != nil {
		return err
	}
	now, seq, ran := sim.Cycles(er.I64()), er.U64(), er.U64()
	nt := er.Len(17)
	type tombRec struct {
		at   sim.Cycles
		seq  uint64
		name string
	}
	tombs := make([]tombRec, nt)
	for i := range tombs {
		tombs[i] = tombRec{sim.Cycles(er.I64()), er.U64(), er.String()}
	}
	if err := er.Err(); err != nil {
		return err
	}
	eng.BeginRestore(now)
	for _, c := range comps {
		r, err := snap.Section("srv/" + c.Name)
		if err != nil {
			return err
		}
		if err := c.C.RestoreState(r); err != nil {
			return fmt.Errorf("kernel: restore %s: %w", c.Name, err)
		}
	}
	for _, t := range tombs {
		eng.RestoreTombstone(t.at, t.seq, t.name)
	}
	return eng.FinishRestore(seq, ran)
}

// FaultComponent adapts a fault injector (its RNG cursor and counters) to the
// shard-checkpoint composition. The injector owns no events here: queueing-
// server fault draws are synchronous.
func FaultComponent(name string, inj *faultinject.Injector) Component {
	return Component{Name: name, C: faultCodec{inj}}
}

type faultCodec struct{ inj *faultinject.Injector }

func (f faultCodec) SnapshotState(w *snapshot.W) error { f.inj.SnapshotState(w); return nil }
func (f faultCodec) ClaimEvents(map[uint64]bool)       {}
func (f faultCodec) RestoreState(r *snapshot.R) error {
	mismatch, err := f.inj.RestoreState(r)
	if err != nil {
		return err
	}
	if mismatch {
		return fmt.Errorf("kernel: snapshot fault plan on/off does not match the live injector")
	}
	return nil
}

func snapshotRequests(w *snapshot.W, reqs []workload.Request) {
	w.Len(len(reqs))
	for _, r := range reqs {
		r.SnapshotState(w)
	}
}

func restoreRequests(r *snapshot.R) []workload.Request {
	n := r.Len(24)
	reqs := make([]workload.Request, n)
	for i := range reqs {
		reqs[i] = workload.RestoreRequest(r)
	}
	return reqs
}

// eventRec is one owned live event being serialized.
type eventRec struct {
	at  sim.Cycles
	seq uint64
}

// ---- FCFS ----

// SnapshotState writes the FCFS server's dynamic state.
func (s *FCFSServer) SnapshotState(w *snapshot.W) error {
	snapshotRequests(w, s.queue.buf[s.queue.head:])
	w.U64(uint64(s.busy)).U64(s.done).U64(s.faulted)
	once := make([]int64, 0, len(s.faultedOnce))
	for id, v := range s.faultedOnce {
		if v {
			once = append(once, int64(id))
		}
	}
	sort.Slice(once, func(i, j int) bool { return once[i] < once[j] })
	w.I64s(once)

	var arrivals []*fcfsArrival
	var arrEvs, doneEvs []eventRec
	var dones []*fcfsDone
	s.eng.VisitLiveEvents(func(at sim.Cycles, seq uint64, _ string, cb sim.Callback) {
		switch v := cb.(type) {
		case *fcfsArrival:
			if v.s == s {
				arrivals = append(arrivals, v)
				arrEvs = append(arrEvs, eventRec{at, seq})
			}
		case *fcfsDone:
			if v.s == s {
				dones = append(dones, v)
				doneEvs = append(doneEvs, eventRec{at, seq})
			}
		}
	})
	w.Len(len(arrivals))
	for i, a := range arrivals {
		w.I64(int64(arrEvs[i].at)).U64(arrEvs[i].seq)
		a.r.SnapshotState(w)
	}
	w.Len(len(dones))
	for i, d := range dones {
		w.I64(int64(doneEvs[i].at)).U64(doneEvs[i].seq)
		d.r.SnapshotState(w)
		w.I64(int64(d.total)).I64(int64(d.pen)).Bool(d.fault)
	}
	return nil
}

// RestoreState replaces the FCFS server's dynamic state with the checkpoint's.
// The engine must be mid-restore (BeginRestore called); RestoreShard arranges
// this.
func (s *FCFSServer) RestoreState(r *snapshot.R) error {
	queued := restoreRequests(r)
	busy, done, faulted := r.U64(), r.U64(), r.U64()
	once := r.I64s()
	na := r.Len(40)
	type arrRec struct {
		ev eventRec
		r  workload.Request
	}
	arrs := make([]arrRec, na)
	for i := range arrs {
		arrs[i] = arrRec{eventRec{sim.Cycles(r.I64()), r.U64()}, workload.RestoreRequest(r)}
	}
	nd := r.Len(57)
	type doneRec struct {
		ev    eventRec
		r     workload.Request
		total sim.Cycles
		pen   sim.Cycles
		fault bool
	}
	dones := make([]doneRec, nd)
	for i := range dones {
		dones[i] = doneRec{
			ev: eventRec{sim.Cycles(r.I64()), r.U64()}, r: workload.RestoreRequest(r),
		}
		dones[i].total, dones[i].pen, dones[i].fault = sim.Cycles(r.I64()), sim.Cycles(r.I64()), r.Bool()
	}
	if err := r.Err(); err != nil {
		return err
	}

	s.queue = ring[workload.Request]{buf: queued}
	s.busy, s.done, s.faulted = int(busy), done, faulted
	s.faultedOnce = nil
	if len(once) > 0 {
		s.faultedOnce = make(map[int]bool, len(once))
		for _, id := range once {
			s.faultedOnce[int(id)] = true
		}
	}
	s.donePool = nil
	arena := make([]fcfsArrival, na)
	for i, a := range arrs {
		arena[i] = fcfsArrival{s: s, r: a.r}
		s.eng.RestoreEvent(a.ev.at, a.ev.seq, "fcfs-arrival", &arena[i])
	}
	for _, d := range dones {
		name := "fcfs-done"
		if d.fault {
			name = "fcfs-fault"
		}
		s.eng.RestoreEvent(d.ev.at, d.ev.seq, name,
			&fcfsDone{s: s, r: d.r, total: d.total, pen: d.pen, fault: d.fault})
	}
	return nil
}

// ClaimEvents marks the server's live events in the engine's claimed set.
func (s *FCFSServer) ClaimEvents(claimed map[uint64]bool) {
	s.eng.VisitLiveEvents(func(_ sim.Cycles, seq uint64, _ string, cb sim.Callback) {
		switch v := cb.(type) {
		case *fcfsArrival:
			if v.s == s {
				claimed[seq] = true
			}
		case *fcfsDone:
			if v.s == s {
				claimed[seq] = true
			}
		}
	})
}

// ---- PS ----

// SnapshotState writes the PS server's dynamic state. The fluid remainders
// are serialized raw (no advance() first): draining virtual work at snapshot
// time would reassociate the floating-point arithmetic and perturb the
// continued run by an ulp.
func (s *PSServer) SnapshotState(w *snapshot.W) error {
	ids := make([]int, 0, len(s.active))
	for id := range s.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Len(len(ids))
	for _, id := range ids {
		a := s.active[id]
		a.r.SnapshotState(w)
		w.F64(a.remaining).I64(int64(a.faultPen))
	}
	snapshotRequests(w, s.pending.buf[s.pending.head:])
	w.I64(int64(s.lastUpdate)).U64(s.done).U64(s.faulted)

	w.Bool(s.nextEv != sim.NoEvent)
	if s.nextEv != sim.NoEvent {
		at, seq, ok := s.eng.EventInfo(s.nextEv)
		if !ok {
			return fmt.Errorf("kernel: ps next-finisher event handle is stale at checkpoint")
		}
		w.I64(int64(at)).U64(seq).I64(int64(s.nextTarget.r.ID))
	}

	var arrivals []*psArrival
	var arrEvs []eventRec
	s.eng.VisitLiveEvents(func(at sim.Cycles, seq uint64, _ string, cb sim.Callback) {
		if v, ok := cb.(*psArrival); ok && v.s == s {
			arrivals = append(arrivals, v)
			arrEvs = append(arrEvs, eventRec{at, seq})
		}
	})
	w.Len(len(arrivals))
	for i, a := range arrivals {
		w.I64(int64(arrEvs[i].at)).U64(arrEvs[i].seq)
		a.r.SnapshotState(w)
	}
	return nil
}

// RestoreState replaces the PS server's dynamic state with the checkpoint's.
func (s *PSServer) RestoreState(r *snapshot.R) error {
	nact := r.Len(40)
	type actRec struct {
		r         workload.Request
		remaining float64
		faultPen  sim.Cycles
	}
	acts := make([]actRec, nact)
	for i := range acts {
		acts[i] = actRec{workload.RestoreRequest(r), r.F64(), sim.Cycles(r.I64())}
	}
	pending := restoreRequests(r)
	lastUpdate := sim.Cycles(r.I64())
	done, faulted := r.U64(), r.U64()
	hasNext := r.Bool()
	var next eventRec
	var nextID int64
	if hasNext {
		next = eventRec{sim.Cycles(r.I64()), r.U64()}
		nextID = r.I64()
	}
	na := r.Len(40)
	type arrRec struct {
		ev eventRec
		r  workload.Request
	}
	arrs := make([]arrRec, na)
	for i := range arrs {
		arrs[i] = arrRec{eventRec{sim.Cycles(r.I64()), r.U64()}, workload.RestoreRequest(r)}
	}
	if err := r.Err(); err != nil {
		return err
	}

	s.active = make(map[int]*psReq, nact)
	for _, a := range acts {
		s.active[a.r.ID] = &psReq{r: a.r, remaining: a.remaining, faultPen: a.faultPen}
	}
	s.pending = ring[workload.Request]{buf: pending}
	s.lastUpdate, s.done, s.faulted = lastUpdate, done, faulted
	s.free, s.finBuf = nil, nil
	s.nextEv, s.nextTarget = sim.NoEvent, nil
	if hasNext {
		target, ok := s.active[int(nextID)]
		if !ok {
			return fmt.Errorf("kernel: ps next-finisher targets unknown request %d", nextID)
		}
		s.nextTarget = target
		s.nextEv = s.eng.RestoreEvent(next.at, next.seq, "ps-done", s)
	}
	arena := make([]psArrival, na)
	for i, a := range arrs {
		arena[i] = psArrival{s: s, r: a.r}
		s.eng.RestoreEvent(a.ev.at, a.ev.seq, "ps-arrival", &arena[i])
	}
	return nil
}

// ClaimEvents marks the server's live events in the engine's claimed set.
func (s *PSServer) ClaimEvents(claimed map[uint64]bool) {
	s.eng.VisitLiveEvents(func(_ sim.Cycles, seq uint64, _ string, cb sim.Callback) {
		if v, ok := cb.(*psArrival); ok && v.s == s {
			claimed[seq] = true
		}
		if v, ok := cb.(*PSServer); ok && v == s {
			claimed[seq] = true
		}
	})
}

// ---- Timeslice ----

// SnapshotState writes the timeslice server's dynamic state.
func (s *TimesliceServer) SnapshotState(w *snapshot.W) error {
	w.Len(s.queue.len())
	for i := s.queue.head; i < len(s.queue.buf); i++ {
		req := s.queue.buf[i]
		req.r.SnapshotState(w)
		w.I64(int64(req.remaining))
	}
	w.U64(uint64(s.busy)).U64(s.done).U64(s.sswaps)

	var arrivals []*tsArrival
	var arrEvs, sliceEvs []eventRec
	var slices []*tsSlice
	s.eng.VisitLiveEvents(func(at sim.Cycles, seq uint64, _ string, cb sim.Callback) {
		switch v := cb.(type) {
		case *tsArrival:
			if v.s == s {
				arrivals = append(arrivals, v)
				arrEvs = append(arrEvs, eventRec{at, seq})
			}
		case *tsSlice:
			if v.s == s {
				slices = append(slices, v)
				sliceEvs = append(sliceEvs, eventRec{at, seq})
			}
		}
	})
	w.Len(len(arrivals))
	for i, a := range arrivals {
		w.I64(int64(arrEvs[i].at)).U64(arrEvs[i].seq)
		a.r.SnapshotState(w)
	}
	w.Len(len(slices))
	for i, e := range slices {
		w.I64(int64(sliceEvs[i].at)).U64(sliceEvs[i].seq)
		e.req.r.SnapshotState(w)
		w.I64(int64(e.req.remaining)).I64(int64(e.slice))
	}
	return nil
}

// RestoreState replaces the timeslice server's dynamic state with the
// checkpoint's.
func (s *TimesliceServer) RestoreState(r *snapshot.R) error {
	nq := r.Len(32)
	type reqRec struct {
		r         workload.Request
		remaining sim.Cycles
	}
	queued := make([]reqRec, nq)
	for i := range queued {
		queued[i] = reqRec{workload.RestoreRequest(r), sim.Cycles(r.I64())}
	}
	busy, done, sswaps := r.U64(), r.U64(), r.U64()
	na := r.Len(40)
	type arrRec struct {
		ev eventRec
		r  workload.Request
	}
	arrs := make([]arrRec, na)
	for i := range arrs {
		arrs[i] = arrRec{eventRec{sim.Cycles(r.I64()), r.U64()}, workload.RestoreRequest(r)}
	}
	ns := r.Len(56)
	type sliceRec struct {
		ev        eventRec
		r         workload.Request
		remaining sim.Cycles
		slice     sim.Cycles
	}
	slices := make([]sliceRec, ns)
	for i := range slices {
		slices[i] = sliceRec{ev: eventRec{sim.Cycles(r.I64()), r.U64()}, r: workload.RestoreRequest(r)}
		slices[i].remaining, slices[i].slice = sim.Cycles(r.I64()), sim.Cycles(r.I64())
	}
	if err := r.Err(); err != nil {
		return err
	}

	buf := make([]*tsReq, nq)
	for i, q := range queued {
		buf[i] = &tsReq{r: q.r, remaining: q.remaining}
	}
	s.queue = ring[*tsReq]{buf: buf}
	s.busy, s.done, s.sswaps = int(busy), done, sswaps
	s.free, s.slicePool = nil, nil
	arena := make([]tsArrival, na)
	for i, a := range arrs {
		arena[i] = tsArrival{s: s, r: a.r}
		s.eng.RestoreEvent(a.ev.at, a.ev.seq, "ts-arrival", &arena[i])
	}
	for _, e := range slices {
		s.eng.RestoreEvent(e.ev.at, e.ev.seq, "ts-slice",
			&tsSlice{s: s, req: &tsReq{r: e.r, remaining: e.remaining}, slice: e.slice})
	}
	return nil
}

// ClaimEvents marks the server's live events in the engine's claimed set.
func (s *TimesliceServer) ClaimEvents(claimed map[uint64]bool) {
	s.eng.VisitLiveEvents(func(_ sim.Cycles, seq uint64, _ string, cb sim.Callback) {
		switch v := cb.(type) {
		case *tsArrival:
			if v.s == s {
				claimed[seq] = true
			}
		case *tsSlice:
			if v.s == s {
				claimed[seq] = true
			}
		}
	})
}

var (
	_ ComponentCodec = (*FCFSServer)(nil)
	_ ComponentCodec = (*PSServer)(nil)
	_ ComponentCodec = (*TimesliceServer)(nil)
)

// ---- Nocs personality ----

// The nocs kernel's service threads are ordinary hardware threads — their
// registers, mwait parking, and armed watches are captured by the core and
// monitor codecs. What lives here is the kernel's own bookkeeping: the ptid
// allocator cursor, syscall counters, and each service's parked flag.
// Attach with m.AttachSnapshotter("nocs", shard, k) on both machines; the
// restore target must have spawned the same services in the same order
// (validated). In-flight syscall completions ("syscall-done") and request-
// runner completions ("req-done") are not checkpointable — checkpoint between
// them or the engine's unclaimed-event check names them.

// SnapshotState writes the kernel personality's dynamic state.
func (k *Nocs) SnapshotState(w *snapshot.W) error {
	w.I64(int64(k.nextPtid))
	w.U64(k.syscalls).U64(k.unknown).U64(k.reArms)
	w.I64(int64(k.services)).I64(int64(k.nativeSeq))
	w.Len(len(k.svcParked))
	for _, p := range k.svcParked {
		w.Bool(p)
	}
	return nil
}

// RestoreState replaces the kernel personality's dynamic state with the
// checkpoint's.
func (k *Nocs) RestoreState(r *snapshot.R) error {
	nextPtid := r.I64()
	syscalls, unknown, reArms := r.U64(), r.U64(), r.U64()
	services, nativeSeq := int(r.I64()), int(r.I64())
	np := r.Len(1)
	parked := make([]bool, np)
	for i := range parked {
		parked[i] = r.Bool()
	}
	if err := r.Err(); err != nil {
		return err
	}
	if services != k.services || nativeSeq != k.nativeSeq || np != len(k.svcParked) {
		return fmt.Errorf("kernel: snapshot has %d services / %d natives, live kernel has %d / %d — spawn the same services before restore",
			services, nativeSeq, k.services, k.nativeSeq)
	}
	k.nextPtid = hwthread.PTID(nextPtid)
	k.syscalls, k.unknown, k.reArms = syscalls, unknown, reArms
	copy(k.svcParked, parked)
	return nil
}

// LiveHandles lists the kernel's queued events for the engine's claimed set.
// The nocs personality owns none: service work is charged inline on the
// hardware threads, and the transient syscall/request completion closures
// are deliberately outside the format (see above).
func (k *Nocs) LiveHandles() []sim.Handle { return nil }
