package kernel

import (
	"testing"

	"nocs/internal/sim"
	"nocs/internal/workload"
)

// steadyBatch submits one deterministic batch of n requests via SubmitAll and
// drains the engine. Arrival times advance from the engine's current time so
// successive batches replay the same pattern.
func steadyBatch(eng *sim.Shard, srv interface {
	SubmitAll([]workload.Request)
}, reqs []workload.Request, n int) {
	base := eng.Now() + 1
	for i := 0; i < n; i++ {
		reqs[i] = workload.Request{
			ID:      int(base) + i,
			Arrival: base + sim.Cycles(i*37),
			Demand:  sim.Cycles(50 + (i%7)*100),
		}
	}
	srv.SubmitAll(reqs[:n])
	eng.Run(0)
}

// TestServersSteadyStateAllocBound pins the zero-alloc queueing rework: once
// a server's pools are warm (ring capacity, request/callback freelists), a
// whole batch of requests costs at most the SubmitAll arena — a handful of
// allocations per batch, not per request. The old closure-per-event design
// allocated 4–6 objects per request; a regression back to that shape trips
// the per-batch bound immediately.
func TestServersSteadyStateAllocBound(t *testing.T) {
	const n = 200
	// Per-batch allocation budget: the SubmitAll arena plus slack for map
	// internals (PS active set) — far below one allocation per request.
	const budget = 16.0

	cases := []struct {
		name  string
		build func(eng *sim.Shard) interface {
			SubmitAll([]workload.Request)
		}
	}{
		{"fcfs", func(eng *sim.Shard) interface {
			SubmitAll([]workload.Request)
		} {
			return NewFCFS(eng, 4, 10, nil)
		}},
		{"ps", func(eng *sim.Shard) interface {
			SubmitAll([]workload.Request)
		} {
			return NewPS(eng, 4, 10, nil)
		}},
		{"timeslice", func(eng *sim.Shard) interface {
			SubmitAll([]workload.Request)
		} {
			return NewTimeslice(eng, 4, 100, 5, nil)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.SoloShard(sim.NewEngine(nil))
			srv := tc.build(eng)
			reqs := make([]workload.Request, n)
			steadyBatch(eng, srv, reqs, n) // warmup: grow rings, pools, heap
			allocs := testing.AllocsPerRun(10, func() {
				steadyBatch(eng, srv, reqs, n)
			})
			if allocs > budget {
				t.Fatalf("%s steady-state batch of %d requests allocates %.1f, want ≤ %.0f",
					tc.name, n, allocs, budget)
			}
		})
	}
}
