package kernel

import (
	"strings"
	"testing"

	"nocs/internal/asm"
	"nocs/internal/device"
	"nocs/internal/hwthread"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

func TestLegacySyscallTable(t *testing.T) {
	m := machine.New()
	k := NewLegacy(m.Core(0))
	k.RegisterSyscall(7, func(tc *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		return args[0] + args[1], 200
	})
	user := asm.MustAssemble("u", `
main:
	movi r1, 7
	movi r2, 30
	movi r3, 12
	syscall
	mov r6, r1
	halt
`)
	m.Core(0).BindProgram(0, user, "main")
	m.Core(0).BootStart(0)
	m.Run(0)
	ctx := m.Core(0).Threads().Context(0)
	if ctx.Regs.GPR[6] != 42 {
		t.Fatalf("syscall result %d", ctx.Regs.GPR[6])
	}
	handled, unknown := k.Syscalls()
	if handled != 1 || unknown != 0 {
		t.Fatalf("counts %d/%d", handled, unknown)
	}
	if k.Core() != m.Core(0) {
		t.Fatal("Core accessor")
	}
}

func TestLegacyUnknownSyscall(t *testing.T) {
	m := machine.New()
	k := NewLegacy(m.Core(0))
	user := asm.MustAssemble("u", "main:\n\tmovi r1, 99\n\tsyscall\n\tmov r6, r1\n\thalt")
	m.Core(0).BindProgram(0, user, "main")
	m.Core(0).BootStart(0)
	m.Run(0)
	if m.Core(0).Threads().Context(0).Regs.GPR[6] != -1 {
		t.Fatal("unknown syscall should return -1")
	}
	_, unknown := k.Syscalls()
	if unknown != 1 {
		t.Fatal("unknown count")
	}
}

func TestLegacyNICIRQServesPackets(t *testing.T) {
	m := machine.New()
	k := NewLegacy(m.Core(0))
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x10000, BufBase: 0x20000,
		TailAddr: 0x30000, HeadAddr: 0x30008,
	}, device.Signal{IRQ: m.IRQ(), Vector: 33})
	if err != nil {
		t.Fatal(err)
	}

	var seqs []int64
	err = k.ServeNICWithIRQ(m.IRQ(), 33, 0, nic.TailAddr(), 0x30008, 150,
		func(seq int64, at sim.Cycles) { seqs = append(seqs, seq) })
	if err != nil {
		t.Fatal(err)
	}
	// Keep the victim thread busy so InjectDelay has a target.
	busy := asm.MustAssemble("b", `
main:
	movi r1, 0
	movi r2, 100000
loop:
	addi r1, r1, 1
	blt r1, r2, loop
	halt
`)
	m.Core(0).BindProgram(0, busy, "main")
	m.Core(0).BootStart(0)
	for i := 0; i < 3; i++ {
		nic.Deliver([]int64{int64(i)})
	}
	m.RunUntil(100000)
	if len(seqs) != 3 {
		t.Fatalf("served %d packets: %v", len(seqs), seqs)
	}
	if m.Mem().Read(0x30008) != 3 {
		t.Fatal("head not published")
	}
	_, delivered, _, _ := m.IRQ().Stats()
	if delivered != 3 {
		t.Fatalf("delivered %d interrupts", delivered)
	}
}

func TestFlexSCEndToEnd(t *testing.T) {
	m := machine.New()
	k := NewLegacy(m.Core(0))
	k.RegisterSyscall(1, func(tc *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		return args[0] * 2, 100
	})
	f := NewFlexSC(k, 0x70000, 8)
	// Kernel worker on ptid 1 (dedicated polling thread, supervisor).
	worker := asm.MustAssemble("w", f.WorkerProgramSource())
	m.Core(0).BindProgram(1, worker, "worker")
	m.Core(0).Threads().Context(1).Regs.Mode = 1
	m.Core(0).BootStart(1)

	f.Post(2, 1, 21)
	m.RunUntil(20000)
	done, res := f.Poll(2)
	if !done || res != 42 {
		t.Fatalf("flexsc result %v/%d", done, res)
	}
	if f.Executed() != 1 {
		t.Fatal("executed count")
	}
	// Slot is recycled.
	if done, _ := f.Poll(2); done {
		t.Fatal("slot not cleared")
	}
	if f.StatusAddr(2) != 0x70000+2*32 {
		t.Fatal("status addr")
	}
	handled, _ := k.Syscalls()
	if handled != 1 {
		t.Fatal("syscall counted")
	}
}

func TestFlexSCUnknownSyscall(t *testing.T) {
	m := machine.New()
	k := NewLegacy(m.Core(0))
	f := NewFlexSC(k, 0x70000, 4)
	worker := asm.MustAssemble("w", f.WorkerProgramSource())
	m.Core(0).BindProgram(1, worker, "worker")
	m.Core(0).Threads().Context(1).Regs.Mode = 1
	m.Core(0).BootStart(1)
	f.Post(0, 99, 5)
	m.RunUntil(20000)
	done, res := f.Poll(0)
	if !done || res != -1 {
		t.Fatalf("unknown flexsc syscall: %v/%d", done, res)
	}
}

func TestNocsServeSyscallsEndToEnd(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	k.RegisterSyscall(7, func(tc *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		return args[0] + args[1], 200
	})
	svc, err := k.ServeSyscalls([]hwthread.PTID{0}, 0x80000)
	if err != nil {
		t.Fatal(err)
	}
	if svc == 0 || k.Services() != 1 {
		t.Fatal("service accounting")
	}
	user := asm.MustAssemble("u", `
main:
	movi r1, 7
	movi r2, 30
	movi r3, 12
	syscall
	mov r6, r1
	halt
`)
	m.Core(0).BindProgram(0, user, "main")
	m.Run(0) // let the service park first
	m.Core(0).BootStart(0)
	m.Run(0)
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	ctx := m.Core(0).Threads().Context(0)
	if ctx.Regs.GPR[6] != 42 {
		t.Fatalf("syscall result %d", ctx.Regs.GPR[6])
	}
	if ctx.State != hwthread.Disabled {
		t.Fatalf("user state %v", ctx.State)
	}
	handled, _ := k.Syscalls()
	if handled != 1 {
		t.Fatal("handled count")
	}
}

func TestNocsServeSyscallsMultipleUsersRepeated(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	k.RegisterSyscall(1, func(tc *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		return args[0] + 1, 50
	})
	users := []hwthread.PTID{0, 1, 2}
	if _, err := k.ServeSyscalls(users, 0x80000); err != nil {
		t.Fatal(err)
	}
	// Each user makes 5 syscalls in a loop, accumulating results.
	user := asm.MustAssemble("u", `
main:
	movi r7, 0      ; counter
	movi r8, 0      ; accumulator
loop:
	movi r1, 1
	mov r2, r7
	syscall
	add r8, r8, r1
	addi r7, r7, 1
	movi r9, 5
	blt r7, r9, loop
	halt
`)
	m.Run(0)
	for _, u := range users {
		m.Core(0).BindProgram(u, user, "main")
		m.Core(0).BootStart(u)
	}
	m.Run(0)
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	for _, u := range users {
		// sum of (i+1) for i=0..4 = 15
		if got := m.Core(0).Threads().Context(u).Regs.GPR[8]; got != 15 {
			t.Fatalf("user %d accumulated %d, want 15", u, got)
		}
	}
	handled, _ := k.Syscalls()
	if handled != 15 {
		t.Fatalf("handled %d, want 15", handled)
	}
}

func TestNocsUnknownSyscallReturnsMinusOne(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	k.ServeSyscalls([]hwthread.PTID{0}, 0x80000)
	user := asm.MustAssemble("u", "main:\n\tmovi r1, 123\n\tsyscall\n\tmov r6, r1\n\thalt")
	m.Core(0).BindProgram(0, user, "main")
	m.Run(0)
	m.Core(0).BootStart(0)
	m.Run(0)
	if got := m.Core(0).Threads().Context(0).Regs.GPR[6]; got != -1 {
		t.Fatalf("unknown syscall returned %d", got)
	}
	_, unknown := k.Syscalls()
	if unknown != 1 {
		t.Fatal("unknown count")
	}
}

func TestNocsServeDevice(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x10000, BufBase: 0x20000,
		TailAddr: 0x30000, HeadAddr: 0x30008,
	}, device.Signal{}) // no IRQ: pure monitor path
	if err != nil {
		t.Fatal(err)
	}

	var seqs []int64
	if _, err := k.ServeDevice("nic-rx", nic.TailAddr(), 0x30008, 150,
		func(seq int64, at sim.Cycles) { seqs = append(seqs, seq) }); err != nil {
		t.Fatal(err)
	}
	m.Run(0) // park
	for i := 0; i < 4; i++ {
		nic.Deliver([]int64{int64(i)})
		m.Run(0)
	}
	if len(seqs) != 4 {
		t.Fatalf("served %v", seqs)
	}
	if m.Mem().Read(0x30008) != 4 {
		t.Fatal("head not published")
	}
	// No interrupts were involved.
	raised, _, _, _ := m.IRQ().Stats()
	if raised != 0 {
		t.Fatal("IRQ raised on nocs path")
	}
}

func TestNocsServeDeviceBatchesBursts(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	count := 0
	k.ServeDevice("burst", 0x30000, 0x30008, 10,
		func(seq int64, at sim.Cycles) { count++ })
	m.Run(0)
	// Burst of 5 arrives while the service processes the first: all drained.
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x10000, BufBase: 0x20000,
		TailAddr: 0x30000, HeadAddr: 0x30008,
	}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		nic.Deliver([]int64{1})
	}
	m.Run(0)
	if count != 5 {
		t.Fatalf("drained %d of 5", count)
	}
}

func TestAllocPtidExhaustion(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	n := m.Core(0).Threads().Len()
	for i := 0; i < n; i++ {
		if _, err := k.AllocPtid(); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if _, err := k.AllocPtid(); err == nil || !strings.Contains(err.Error(), "out of") {
		t.Fatalf("exhaustion error: %v", err)
	}
}

func TestRequestRunnerCompletesAndShares(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	r := k.NewRequestRunner(100)

	var done []sim.Cycles
	if err := r.Start(0, 1000, func(at sim.Cycles) { done = append(done, at) }); err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	if len(done) != 1 {
		t.Fatal("request did not complete")
	}
	solo := done[0]

	// Same demand with 7 siblings on 2 slots: each runs ~4x slower.
	m2 := machine.New()
	k2 := NewNocs(m2.Core(0))
	r2 := k2.NewRequestRunner(100)
	var last sim.Cycles
	for i := 0; i < 8; i++ {
		if err := r2.Start(hwthread.PTID(i), 1000, func(at sim.Cycles) { last = at }); err != nil {
			t.Fatal(err)
		}
	}
	m2.Run(0)
	ratio := float64(last) / float64(solo)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("PS sharing ratio %.2f, want ~4", ratio)
	}

	// Thread reusable after completion.
	if err := r.Start(0, 100, nil); err != nil {
		t.Fatalf("reuse: %v", err)
	}
	m.Run(0)
}

func TestRequestRunnerErrors(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	r := k.NewRequestRunner(0) // clamps to default
	if err := r.Start(999, 100, nil); err == nil {
		t.Fatal("bad ptid")
	}
	if err := r.Start(0, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(0, 100, nil); err == nil {
		t.Fatal("double start on busy ptid")
	}
}

func TestSoftSchedulerSwaps(t *testing.T) {
	m := machine.New()
	c := m.Core(0)
	s := NewSoftScheduler(c, 0)
	progA := asm.MustAssemble("a", "main:\n\tmovi r5, 1\n\thalt")
	progB := asm.MustAssemble("b", "main:\n\tmovi r5, 2\n\thalt")
	ta := &SoftThread{Name: "A"}
	ta.Regs.Prog = progA
	tb := &SoftThread{Name: "B"}
	tb.Regs.Prog = progB

	if err := s.SwitchTo(ta); err != nil {
		t.Fatal(err)
	}
	c.BootStart(0)
	m.Run(0)
	if c.Threads().Context(0).Regs.GPR[5] != 1 {
		t.Fatal("thread A did not run")
	}
	// Thread halted (disabled): swap in B.
	if err := s.SwitchTo(tb); err != nil {
		t.Fatal(err)
	}
	c.Threads().Context(0).Regs.PC = 0
	c.BootStart(0)
	m.Run(0)
	if c.Threads().Context(0).Regs.GPR[5] != 2 {
		t.Fatal("thread B did not run")
	}
	// A's state was saved at swap.
	if ta.Regs.Regs.GPR[5] != 1 {
		t.Fatal("thread A state lost")
	}
	if s.Swaps() != 2 {
		t.Fatalf("swaps %d", s.Swaps())
	}
	if s.SwitchCost() != c.Costs().ContextSwitch {
		t.Fatal("switch cost")
	}
}

func TestSoftSchedulerRejectsRunnableSwap(t *testing.T) {
	m := machine.New()
	c := m.Core(0)
	s := NewSoftScheduler(c, 0)
	prog := asm.MustAssemble("a", "main:\n\tjmp main")
	tc := c.Threads().Context(0)
	tc.Prog = prog
	c.BootStart(0)
	st := &SoftThread{Name: "X"}
	st.Regs.Prog = prog
	if err := s.SwitchTo(st); err == nil {
		t.Fatal("swap of runnable thread accepted")
	}
	bad := NewSoftScheduler(c, 999)
	if err := bad.SwitchTo(st); err == nil {
		t.Fatal("bad ptid accepted")
	}
}
