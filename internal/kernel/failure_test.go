package kernel

import (
	"testing"

	"nocs/internal/asm"

	"nocs/internal/device"
	"nocs/internal/hwthread"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

// Failure injection: kernel service threads are stopped abruptly (as a
// buggy manager or a crash-handling watchdog would) and later restarted.
// Because device queues carry persistent head/tail counters, a restarted
// service must recover the backlog that accumulated while it was down —
// no event may be lost, and the machine must stay healthy.

func TestServiceStopAndRestartRecoversBacklog(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x100000, BufBase: 0x200000,
		TailAddr: 0x300000, HeadAddr: 0x300008,
	}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int64
	svc, err := k.ServeDevice("rx", nic.TailAddr(), 0x300008, 100,
		func(seq int64, at sim.Cycles) { seqs = append(seqs, seq) })
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0) // park

	// Normal operation.
	nic.Deliver([]int64{0})
	m.Run(0)
	if len(seqs) != 1 {
		t.Fatalf("served %d", len(seqs))
	}

	// Kill the service thread while parked.
	m.Core(0).StopThread(svc)
	if m.Core(0).Threads().Context(svc).State != hwthread.Disabled {
		t.Fatal("service not stopped")
	}

	// Packets arrive while the service is down: nobody wakes.
	for i := 1; i <= 3; i++ {
		nic.Deliver([]int64{int64(i)})
	}
	m.Run(0)
	if len(seqs) != 1 {
		t.Fatalf("dead service processed packets: %v", seqs)
	}

	// Restart: the service re-enters its loop, re-arms, and drains the
	// backlog from the persistent head/tail counters.
	if err := m.Core(0).StartThreadSupervised(svc); err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	if len(seqs) != 4 {
		t.Fatalf("backlog not recovered: %v", seqs)
	}
	// And future packets flow normally.
	nic.Deliver([]int64{4})
	m.Run(0)
	if len(seqs) != 5 || seqs[4] != 4 {
		t.Fatalf("post-restart delivery: %v", seqs)
	}
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
}

func TestSyscallServiceCrashStrandsUsersButNotMachine(t *testing.T) {
	// If the syscall service dies, users block forever on their syscalls —
	// a hang, not a machine fault — and restarting the service drains the
	// stranded descriptors.
	m := machine.New()
	k := NewNocs(m.Core(0))
	k.RegisterSyscall(1, func(tc *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		return args[0] + 1, 50
	})
	svc, err := k.ServeSyscalls([]hwthread.PTID{0}, 0x800000)
	if err != nil {
		t.Fatal(err)
	}
	user := mustProg(t, m, 0, `
main:
	movi r1, 1
	movi r2, 41
	syscall
	mov r9, r1
	halt
`)
	m.Run(0)
	m.Core(0).StopThread(svc) // crash the service before the user runs

	m.Core(0).BootStart(0)
	m.Run(0)
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
	if user().State != hwthread.Disabled || user().Regs.GPR[9] != 0 {
		// The user wrote its descriptor and disabled itself; nobody served it.
		if user().State != hwthread.Disabled {
			t.Fatalf("user state %v, want disabled (stranded)", user().State)
		}
	}
	if user().Regs.GPR[9] != 0 {
		t.Fatal("user completed without a service")
	}

	// Revive the service: it re-arms, sees the pending descriptor doorbell
	// value already in memory... the doorbell write happened while it was
	// down, so the wake must come from the re-scan on restart.
	if err := m.Core(0).StartThreadSupervised(svc); err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	if user().Regs.GPR[9] != 42 {
		t.Fatalf("stranded syscall not recovered: r9=%d", user().Regs.GPR[9])
	}
}

// mustProg binds src to ptid and returns a context accessor.
func mustProg(t *testing.T, m *machine.Machine, p hwthread.PTID, src string) func() *hwthread.Context {
	t.Helper()
	prog, err := asm.Assemble("prog", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Core(0).BindProgram(p, prog, "main"); err != nil {
		t.Fatal(err)
	}
	return func() *hwthread.Context { return m.Core(0).Threads().Context(p) }
}
