package kernel

import (
	"fmt"

	"nocs/internal/core"
	"nocs/internal/hwthread"
	"nocs/internal/irq"
	"nocs/internal/sim"
)

// SyscallFn implements one system call. It receives the calling thread's
// context (arguments in r2–r5 by ABI) and returns the result and its
// service cost in cycles.
type SyscallFn func(t *hwthread.Context, args [4]int64) (ret int64, cost sim.Cycles)

// Legacy is the conventional kernel personality: syscalls switch privilege
// mode inside the calling hardware thread (charging the core's
// SyscallEntry/SyscallExit costs), and I/O completions arrive as interrupts.
type Legacy struct {
	c *core.Core
	// DispatchCost is the in-kernel syscall demultiplex cost.
	DispatchCost sim.Cycles

	table    map[int64]SyscallFn
	syscalls uint64
	unknown  uint64
}

// NewLegacy installs the legacy personality on a core: after this call,
// SYSCALL instructions on that core perform in-thread mode switches.
func NewLegacy(c *core.Core) *Legacy {
	k := &Legacy{c: c, DispatchCost: 50, table: make(map[int64]SyscallFn)}
	c.LegacySyscall = k.handleSyscall
	return k
}

// Core returns the kernel's core.
func (k *Legacy) Core() *core.Core { return k.c }

// RegisterSyscall binds number to fn.
func (k *Legacy) RegisterSyscall(num int64, fn SyscallFn) {
	k.table[num] = fn
}

// Syscalls returns (handled, unknown) counts.
func (k *Legacy) Syscalls() (handled, unknown uint64) { return k.syscalls, k.unknown }

// handleSyscall is the core's LegacySyscall hook. ABI: r1 = number,
// r2–r5 = arguments, result in r1.
func (k *Legacy) handleSyscall(c *core.Core, t *hwthread.Context) sim.Cycles {
	num := t.Regs.GPR[1]
	fn, ok := k.table[num]
	if !ok {
		k.unknown++
		t.Regs.GPR[1] = -1
		return k.DispatchCost
	}
	k.syscalls++
	args := [4]int64{t.Regs.GPR[2], t.Regs.GPR[3], t.Regs.GPR[4], t.Regs.GPR[5]}
	ret, cost := fn(t, args)
	t.Regs.GPR[1] = ret
	return k.DispatchCost + cost
}

// ServeNICWithIRQ wires interrupt-driven packet receive (the F2 baseline):
// each NIC interrupt enters IRQ context on the victim thread, drains the RX
// ring (head..tail), charges perPacket cycles for each packet, and invokes
// onPacket with each packet's completion time — IRQ-context entry plus the
// processing of it and everything ahead of it in the batch. headAddr is the
// software consumption counter published back for the NIC's overrun check.
func (k *Legacy) ServeNICWithIRQ(ctrl *irq.Controller, vector irq.Vector,
	victim hwthread.PTID, tailAddr, headAddr int64, perPacket sim.Cycles,
	onPacket func(seq int64, at sim.Cycles)) error {
	entry := ctrl.Costs().Entry
	return ctrl.Register(vector, k.c, victim, func(v irq.Vector, at sim.Cycles) sim.Cycles {
		head := k.c.ReadWord(headAddr)
		tail := k.c.ReadWord(tailAddr)
		var cost sim.Cycles
		for seq := head; seq < tail; seq++ {
			cost += perPacket
			if onPacket != nil {
				onPacket(seq, at+entry+cost)
			}
		}
		if tail != head {
			k.c.WriteWord(headAddr, tail)
		}
		return cost
	})
}

// FlexSC is the exception-less *software* baseline from FlexSC (Soares &
// Stumm, OSDI '10), which the paper cites as the best a conventional kernel
// can do without new hardware: user threads post syscalls to shared memory
// pages and dedicated kernel threads execute them in batches, trading mode
// switches for polling latency and a dedicated core.
//
// Syscall page layout (32 bytes per entry at PageBase + 32*i):
//
//	+0:  status (0 free, 1 posted, 2 done)
//	+8:  syscall number
//	+16: argument
//	+24: result
type FlexSC struct {
	k *Legacy
	// PageBase is the shared syscall page address.
	PageBase int64
	// Entries is the page capacity.
	Entries int
	// ScanCost is charged per scan pass; EntryCost per executed call
	// (on top of the syscall's own cost).
	ScanCost  sim.Cycles
	EntryCost sim.Cycles

	executed uint64
}

const (
	flexscEntryBytes = 32
	flexscStatus     = 0
	flexscNum        = 8
	flexscArg        = 16
	flexscRes        = 24

	// FlexSC entry states.
	flexscFree   = 0
	flexscPosted = 1
	flexscDone   = 2
)

// NewFlexSC creates the shared-page machinery and registers the kernel-side
// worker native ("flexsc.scan") on the kernel's own core. Bind a program
// that loops `native flexsc.scan; jmp` on a dedicated supervisor ptid to run
// it — that thread is the "dedicated kernel core" FlexSC burns.
func NewFlexSC(k *Legacy, pageBase int64, entries int) *FlexSC {
	f := &FlexSC{k: k, PageBase: pageBase, Entries: entries, ScanCost: 60, EntryCost: 40}
	k.c.RegisterNative("flexsc.scan", f.scan)
	return f
}

// RegisterWorkerOn makes the scan native available on another core, so the
// dedicated FlexSC worker can run on its own physical core (the usual FlexSC
// deployment: syscall threads pinned away from application cores).
func (f *FlexSC) RegisterWorkerOn(c *core.Core) {
	c.RegisterNative("flexsc.scan", f.scan)
}

// WorkerProgramSource returns the assembly for the kernel-side poller.
func (f *FlexSC) WorkerProgramSource() string {
	return "worker:\n\tnative flexsc.scan\n\tjmp worker\n"
}

// Executed returns the number of syscalls executed through the page.
func (f *FlexSC) Executed() uint64 { return f.executed }

// Post writes a syscall into entry slot i (user-side helper; the costs of
// the three stores are charged by the ST instructions or the caller).
func (f *FlexSC) Post(slot int, num, arg int64) {
	base := f.PageBase + int64(slot)*flexscEntryBytes
	f.k.c.WriteWord(base+flexscNum, num)
	f.k.c.WriteWord(base+flexscArg, arg)
	f.k.c.WriteWord(base+flexscStatus, flexscPosted)
}

// Poll reports whether slot i is done and returns its result, clearing the
// entry when done.
func (f *FlexSC) Poll(slot int) (done bool, result int64) {
	base := f.PageBase + int64(slot)*flexscEntryBytes
	if f.k.c.ReadWord(base+flexscStatus) != flexscDone {
		return false, 0
	}
	res := f.k.c.ReadWord(base + flexscRes)
	f.k.c.WriteWord(base+flexscStatus, flexscFree)
	return true, res
}

// StatusAddr returns the monitorable status address of a slot.
func (f *FlexSC) StatusAddr(slot int) int64 {
	return f.PageBase + int64(slot)*flexscEntryBytes + flexscStatus
}

// scan is the kernel worker body: execute every posted entry in the page.
func (f *FlexSC) scan(c *core.Core, t *hwthread.Context) sim.Cycles {
	cost := f.ScanCost
	for i := 0; i < f.Entries; i++ {
		base := f.PageBase + int64(i)*flexscEntryBytes
		if c.ReadWord(base+flexscStatus) != flexscPosted {
			continue
		}
		num := c.ReadWord(base + flexscNum)
		arg := c.ReadWord(base + flexscArg)
		fn, ok := f.k.table[num]
		ret := int64(-1)
		if ok {
			var sysCost sim.Cycles
			ret, sysCost = fn(t, [4]int64{arg})
			cost += sysCost
			f.k.syscalls++
		} else {
			f.k.unknown++
		}
		cost += f.EntryCost
		c.WriteWord(base+flexscRes, ret)
		c.WriteWord(base+flexscStatus, flexscDone)
		f.executed++
	}
	return cost
}

// SoftThread is a software thread the legacy scheduler multiplexes onto a
// hardware thread: a register snapshot plus program binding. Swapping one in
// or out is what costs the legacy world its context-switch cycles.
type SoftThread struct {
	Name string
	Regs hwthread.Context // only Regs and Prog fields are used
}

// SoftScheduler multiplexes software threads on one hardware thread with an
// explicit context-switch cost — the §1 mechanism the paper wants to make
// "as uncommon as swapping memory pages to disk".
type SoftScheduler struct {
	c      *core.Core
	ptid   hwthread.PTID
	swaps  uint64
	curIdx int
	cur    *SoftThread
}

// NewSoftScheduler manages software-thread swaps on ptid.
func NewSoftScheduler(c *core.Core, ptid hwthread.PTID) *SoftScheduler {
	return &SoftScheduler{c: c, ptid: ptid, curIdx: -1}
}

// Swaps returns the number of context switches performed.
func (s *SoftScheduler) Swaps() uint64 { return s.swaps }

// SwitchTo saves the current software thread's registers and installs next.
// It charges the context-switch cost by injecting delay into the hardware
// thread, exactly as a real switch steals time. The hardware thread must be
// stopped by the caller around the swap (as a kernel would hold the thread
// in kernel context).
func (s *SoftScheduler) SwitchTo(next *SoftThread) error {
	t := s.c.Threads().Context(s.ptid)
	if t == nil {
		return fmt.Errorf("kernel: no ptid %d", s.ptid)
	}
	if t.State == hwthread.Runnable {
		return fmt.Errorf("kernel: cannot swap a runnable hardware thread")
	}
	if s.cur != nil {
		s.cur.Regs.Regs = t.Regs
		s.cur.Regs.Prog = t.Prog
	}
	t.Regs = next.Regs.Regs
	t.Prog = next.Regs.Prog
	s.cur = next
	s.swaps++
	return nil
}

// SwitchCost returns the per-swap cost from the core's configuration.
func (s *SoftScheduler) SwitchCost() sim.Cycles { return s.c.Costs().ContextSwitch }
