package kernel

import (
	"fmt"

	"nocs/internal/device"
	"nocs/internal/hwthread"
	"nocs/internal/sim"
)

// BlockDev is the nocs storage driver: one hardware thread that watches the
// request mailbox slots AND the SSD's completion queue — a single
// multi-address monitor replacing both the submission syscall and the
// completion interrupt of a conventional driver.
//
// Clients call through ukernel-style mailbox slots (32 bytes each at
// MailboxBase + 32*slot): status/op/arg/result, where op is device.OpRead
// or device.OpWrite and arg is the LBA. The reply status lands when the
// device completion arrives, so a blocking read costs the device time plus
// tens of cycles of driver work.
type BlockDev struct {
	MailboxBase int64
	Slots       int

	k   *Nocs
	ssd *device.SSD

	// SubmitCost and CompleteCost are the per-command driver costs
	// (SQE build + doorbell, CQE decode).
	SubmitCost   sim.Cycles
	CompleteCost sim.Cycles

	submitted int64
	harvested int64
	cidToSlot map[int64]int
	reads     uint64
	writes    uint64
	errs      uint64
	ptid      hwthread.PTID
}

// Mailbox slot layout (mirrors ukernel's for client compatibility).
const (
	bdSlotBytes = 32
	bdStatus    = 0
	bdOp        = 8
	bdArg       = 16
	bdRet       = 24
	bdFree      = 0
	bdPosted    = 1
	bdDone      = 2
	bdInFlight  = 3
	bdLenWords  = 8 // fixed transfer size per command
)

// NewBlockDev spawns the driver thread.
func NewBlockDev(k *Nocs, ssd *device.SSD, mailboxBase int64, slots int) (*BlockDev, error) {
	if slots < 1 {
		return nil, fmt.Errorf("kernel: blockdev needs at least one slot")
	}
	if slots > ssd.Config().Entries {
		return nil, fmt.Errorf("kernel: blockdev slots %d exceed SSD queue depth %d", slots, ssd.Config().Entries)
	}
	b := &BlockDev{
		MailboxBase: mailboxBase, Slots: slots,
		k: k, ssd: ssd,
		SubmitCost: 60, CompleteCost: 40,
		cidToSlot: make(map[int64]int),
	}
	c := k.Core()
	watch := make([]int64, 0, slots+1)
	for i := 0; i < slots; i++ {
		watch = append(watch, mailboxBase+int64(i)*bdSlotBytes+bdStatus)
	}
	watch = append(watch, ssd.Config().CQTailAddr)

	p, err := k.SpawnService("blockdev", func() []int64 { return watch },
		func(t *hwthread.Context) sim.Cycles {
			var cost sim.Cycles
			// Submit every newly posted request.
			for i := 0; i < slots; i++ {
				sb := mailboxBase + int64(i)*bdSlotBytes
				if c.ReadWord(sb+bdStatus) != bdPosted {
					continue
				}
				op := c.ReadWord(sb + bdOp)
				lba := c.ReadWord(sb + bdArg)
				c.WriteWord(sb+bdStatus, bdInFlight)
				cid := b.submitted
				b.cidToSlot[cid] = i
				b.ssd.WriteSQE(c.Mem(), cid, op, lba, bdLenWords, cid)
				b.submitted++
				cost += b.SubmitCost + c.AccessCost(b.ssd.Config().DoorbellAddr)
				switch op {
				case device.OpRead:
					b.reads++
				case device.OpWrite:
					b.writes++
				}
				doorbell := b.submitted
				at := cost
				c.Shard().After(at, "bd-doorbell", func() {
					c.WriteWord(b.ssd.Config().DoorbellAddr, doorbell)
				})
			}
			// Harvest completions; reply into the originating slot.
			for b.harvested < c.ReadWord(b.ssd.Config().CQTailAddr) {
				cid, status, _ := b.ssd.ReadCQE(b.harvested)
				b.harvested++
				cost += b.CompleteCost
				slot, ok := b.cidToSlot[cid]
				if !ok {
					b.errs++
					continue
				}
				delete(b.cidToSlot, cid)
				if status != 0 {
					b.errs++
				}
				sb := mailboxBase + int64(slot)*bdSlotBytes
				at := cost
				c.Shard().After(at, "bd-reply", func() {
					c.WriteWord(sb+bdRet, status)
					c.WriteWord(sb+bdStatus, bdDone)
				})
			}
			return cost
		})
	if err != nil {
		return nil, err
	}
	b.ptid = p
	return b, nil
}

// PTID returns the driver's hardware thread.
func (b *BlockDev) PTID() hwthread.PTID { return b.ptid }

// SlotBase returns the mailbox address of slot i.
func (b *BlockDev) SlotBase(i int) int64 { return b.MailboxBase + int64(i)*bdSlotBytes }

// SetupClientRegs points a client's r10 at its slot (clients then use
// ukernel.ClientCallSource with op in r2 = OpRead/OpWrite, arg in r3 = LBA).
func (b *BlockDev) SetupClientRegs(t *hwthread.Context, slot int) {
	t.Regs.GPR[10] = b.SlotBase(slot)
}

// Stats returns (reads, writes, errors, in-flight commands).
func (b *BlockDev) Stats() (reads, writes, errs uint64, inFlight int) {
	return b.reads, b.writes, b.errs, len(b.cidToSlot)
}
