package kernel

import (
	"testing"

	"nocs/internal/hwthread"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

func schedRig(t *testing.T, workers int) (*machine.Machine, *Scheduler) {
	t.Helper()
	m := machine.New(machine.WithThreads(64), machine.WithSMTSlots(2))
	k := NewNocs(m.Core(0))
	ws := make([]hwthread.PTID, workers)
	for i := range ws {
		ws[i] = hwthread.PTID(i)
	}
	s, err := NewScheduler(k, ws, 0x700000, 200)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0) // park the scheduler
	return m, s
}

func TestSchedulerValidation(t *testing.T) {
	m := machine.New()
	k := NewNocs(m.Core(0))
	if _, err := NewScheduler(k, nil, 0x700000, 200); err == nil {
		t.Fatal("empty worker set accepted")
	}
}

func TestSchedulerRunsTasks(t *testing.T) {
	m, s := schedRig(t, 2)
	done := 0
	for i := 0; i < 5; i++ {
		s.Submit(Task{Demand: 1000, OnDone: func(at sim.Cycles) { done++ }})
	}
	m.Run(0)
	if done != 5 {
		t.Fatalf("completed %d of 5", done)
	}
	d, c, maxQ := s.Stats()
	if d != 5 || c != 5 {
		t.Fatalf("stats %d/%d", d, c)
	}
	// 5 tasks on 2 workers: at least 3 had to queue.
	if maxQ < 3 {
		t.Fatalf("peak queue %d, want >= 3", maxQ)
	}
	if s.Queued() != 0 || s.FreeWorkers() != 2 {
		t.Fatal("scheduler not drained")
	}
}

func TestSchedulerPriorityOrder(t *testing.T) {
	m, s := schedRig(t, 1)
	var order []int
	mk := func(id, prio int) Task {
		return Task{Demand: 500, Priority: prio,
			OnDone: func(at sim.Cycles) { order = append(order, id) }}
	}
	// All four are queued before the engine runs: dispatch is pure priority
	// order, FIFO within a priority level.
	s.Submit(mk(0, 1))
	s.Submit(mk(1, 1))
	s.Submit(mk(2, 9))
	s.Submit(mk(3, 5))
	m.Run(0)
	if len(order) != 4 {
		t.Fatalf("completed %d", len(order))
	}
	want := []int{2, 3, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestSchedulerSetsWorkerPriority(t *testing.T) {
	m, s := schedRig(t, 1)
	saw := 0
	s.Submit(Task{Demand: 300, Priority: 7, OnDone: func(at sim.Cycles) {
		saw = m.Core(0).Threads().Context(0).Priority
	}})
	m.Run(0)
	if saw != 7 {
		t.Fatalf("worker priority %d, want 7", saw)
	}
}

func TestSchedulerReactionIsWakeupFast(t *testing.T) {
	// The §4 "tighter loops" claim: dispatch happens at monitor-wakeup
	// latency after Submit, not at some timer tick.
	m, s := schedRig(t, 1)
	var doneAt sim.Cycles
	submitAt := m.Now()
	s.Submit(Task{Demand: 100, OnDone: func(at sim.Cycles) { doneAt = at }})
	m.Run(0)
	latency := doneAt - submitAt - 100 // minus the demand itself
	// Wakeup + dispatch + worker start: well under a thousand cycles.
	if latency > 1000 {
		t.Fatalf("scheduler reaction %d cycles, want < 1000", latency)
	}
}

func TestSchedulerFIFOWithinPriority(t *testing.T) {
	m, s := schedRig(t, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.Submit(Task{Demand: 200, Priority: 3,
			OnDone: func(at sim.Cycles) { order = append(order, i) }})
	}
	m.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestSchedulerManyTasksFewWorkers(t *testing.T) {
	m, s := schedRig(t, 4)
	done := 0
	for i := 0; i < 100; i++ {
		s.Submit(Task{Demand: 300, OnDone: func(at sim.Cycles) { done++ }})
	}
	m.Run(0)
	if done != 100 {
		t.Fatalf("completed %d of 100", done)
	}
	if m.Fatal() != nil {
		t.Fatal(m.Fatal())
	}
}
