package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"nocs/internal/isa"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
; event-counting loop from the package comment
main:
    movi r1, 4096       ; rx queue tail address
loop:
    monitor r1
    mwait
    addi r2, r2, 1
    jmp loop
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 {
		t.Fatalf("len = %d, want 5", p.Len())
	}
	if p.MustEntry("main") != 0 || p.MustEntry("loop") != 1 {
		t.Fatalf("labels: %v", p.Labels)
	}
	if p.Code[4].Op != isa.JMP || p.Code[4].Imm != 1 {
		t.Fatalf("jmp not resolved: %+v", p.Code[4])
	}
}

func TestAssembleAllForms(t *testing.T) {
	src := `
start_here:
	nop
	add r1, r2, r3
	sub r4, r5, r6
	mul r7, r8, r9
	div r10, r11, r12
	and r1, r2, r3
	or r1, r2, r3
	xor r1, r2, r3
	shl r1, r2, r3
	shr r1, r2, r3
	slt r1, r2, r3
	addi r1, r2, -19
	movi r3, 0x40
	mov r4, r5
	fadd f0, f1, f2
	fmul f3, f4, f5
	fmovi f6, 2
	fmov f7, f0
	ld r1, [r2+16]
	ld r1, [r2-8]
	ld r1, [r2]
	st [sp+0], r3
	jmp start_here
	jal lr, start_here
	jr lr
	beq r1, r2, start_here
	bne r1, r2, 0
	blt r1, r2, start_here
	bge r1, r2, start_here
	monitor r1
	mwait
	start r2
	stop r2
	rpull r2, r3, pc
	rpush r2, mode, r4
	invtid r2, r5
	syscall
	sysret
	vmcall
	vmresume
	int 32
	iret
	wrmsr r1, r2
	rdmsr r3, r4
	hlt
	native sys.write
	halt
`
	p, err := Assemble("all", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 47 {
		t.Fatalf("len = %d, want 47", p.Len())
	}
	// Spot-check tricky encodings.
	find := func(op isa.Op) isa.Instr {
		for _, in := range p.Code {
			if in.Op == op {
				return in
			}
		}
		t.Fatalf("opcode %v not found", op)
		return isa.Instr{}
	}
	if in := find(isa.RPULL); in.Rs1 != isa.R2 || in.Rd != isa.R3 || isa.Reg(in.Imm) != isa.PC {
		t.Fatalf("rpull mis-assembled: %+v", in)
	}
	if in := find(isa.RPUSH); in.Rs1 != isa.R2 || isa.Reg(in.Imm) != isa.Mode || in.Rs2 != isa.R4 {
		t.Fatalf("rpush mis-assembled: %+v", in)
	}
	if in := find(isa.NATIVE); in.Sym != "sys.write" {
		t.Fatalf("native mis-assembled: %+v", in)
	}
	if in := find(isa.ST); in.Rs1 != isa.R14 || in.Rs2 != isa.R3 {
		t.Fatalf("st with sp alias mis-assembled: %+v", in)
	}
}

func TestAssembleNegativeAndHexImmediates(t *testing.T) {
	p := MustAssemble("t", "movi r1, -42\nmovi r2, 0xff\nld r3, [r4-24]")
	if p.Code[0].Imm != -42 || p.Code[1].Imm != 255 || p.Code[2].Imm != -24 {
		t.Fatalf("immediates: %+v", p.Code)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
		wantLine     int
	}{
		{"frob r1", "unknown instruction", 1},
		{"add r1, r2", "expects 3 operand", 1},
		{"nop\nadd r1, r2, r99", "bad register", 2},
		{"movi r1, zz", "bad immediate", 1},
		{"ld r1, r2", "bad memory operand", 1},
		{"jmp bad label", "bad jump target", 1},
		{"jmp [r1]", "bad jump target", 1},
		{"my label: nop", "malformed label", 1},
		{"jmp nowhere", "undefined label", 0},
		{"a: nop\na: nop", "duplicate label", 0},
		{"native", "expects 1 operand", 1},
		{"mwait r1", "expects 0 operand", 1},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("src %q: expected error", c.src)
			continue
		}
		ae, ok := err.(*Error)
		if !ok {
			t.Errorf("src %q: error type %T", c.src, err)
			continue
		}
		if !strings.Contains(ae.Msg, c.wantSub) {
			t.Errorf("src %q: error %q does not contain %q", c.src, ae.Msg, c.wantSub)
		}
		if ae.Line != c.wantLine {
			t.Errorf("src %q: error line %d, want %d", c.src, ae.Line, c.wantLine)
		}
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	p := MustAssemble("t", "\n\n; only a comment\n# hash comment\n   \n nop ; trailing\n")
	if p.Len() != 1 || p.Code[0].Op != isa.NOP {
		t.Fatalf("program: %+v", p.Code)
	}
}

func TestLabelOnOwnLineAndSameLine(t *testing.T) {
	p := MustAssemble("t", "a:\nb: nop\nc: d: halt")
	if p.MustEntry("a") != 0 || p.MustEntry("b") != 0 {
		t.Fatal("labels a/b should both be 0")
	}
	if p.MustEntry("c") != 1 || p.MustEntry("d") != 1 {
		t.Fatal("labels c/d should both be 1")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("t", "bogus")
}

// Round trip: disassembling an assembled program and re-assembling it yields
// the same instruction stream.
func TestAssembleDisassembleFixpoint(t *testing.T) {
	src := `
main:
	movi r1, 64
	movi r2, 0
loop:
	addi r2, r2, 1
	blt r2, r1, loop
	monitor r1
	mwait
	rpull r2, r3, pc
	rpush r2, edp, r4
	start r2
	native kernel.tick
	halt
`
	p1 := MustAssemble("t", src)
	d1 := p1.Disassemble()
	p2, err := Assemble("t", d1)
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, d1)
	}
	if p1.Len() != p2.Len() {
		t.Fatalf("length changed: %d -> %d", p1.Len(), p2.Len())
	}
	for i := range p1.Code {
		a, b := p1.Code[i], p2.Code[i]
		a.Sym, b.Sym = "", "" // label names on branch targets may differ from raw imms
		if a.Op == isa.NATIVE {
			a.Sym, b.Sym = p1.Code[i].Sym, p2.Code[i].Sym
		}
		if a != b {
			t.Fatalf("instr %d changed: %+v -> %+v", i, p1.Code[i], p2.Code[i])
		}
	}
	d2 := p2.Disassemble()
	if d1 != d2 {
		t.Fatalf("disassembly not a fixpoint:\n%s\nvs\n%s", d1, d2)
	}
}

// Property: programs built from random simple ALU instructions survive the
// disassemble → assemble round trip.
func TestRoundTripProperty(t *testing.T) {
	alu := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SLT}
	f := func(ops []uint8) bool {
		b := isa.NewBuilder("p")
		for _, o := range ops {
			op := alu[int(o)%len(alu)]
			rd := isa.Reg(o % isa.NumGPR)
			rs1 := isa.Reg((o >> 2) % isa.NumGPR)
			rs2 := isa.Reg((o >> 4) % isa.NumGPR)
			b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		}
		b.Halt()
		p1 := b.MustBuild()
		p2, err := Assemble("p", p1.Disassemble())
		if err != nil {
			return false
		}
		if p1.Len() != p2.Len() {
			return false
		}
		for i := range p1.Code {
			if p1.Code[i] != p2.Code[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorFormatting(t *testing.T) {
	e := &Error{Line: 7, Msg: "boom"}
	if got := e.Error(); got != "asm: line 7: boom" {
		t.Fatalf("Error() = %q", got)
	}
}
