// Package asm implements a two-pass text assembler for the nocs ISA.
//
// Syntax is the same as the disassembler output of internal/isa, so
// assemble(disassemble(p)) is a fixpoint (property-tested). Lines contain an
// optional "label:" prefix, one instruction, and an optional comment starting
// with ';' or '#'. Example:
//
//	; wait for a NIC rx-tail write, then count events
//	main:
//	    movi r1, 4096       ; rx queue tail address
//	loop:
//	    monitor r1
//	    mwait
//	    addi r2, r2, 1
//	    jmp loop
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"nocs/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type parser struct {
	b    *isa.Builder
	line int
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses src into a program named name.
func Assemble(name, src string) (*isa.Program, error) {
	p := &parser{b: isa.NewBuilder(name)}
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		if err := p.parseLine(raw); err != nil {
			return nil, err
		}
	}
	prog, err := p.b.Build()
	if err != nil {
		return nil, &Error{Line: 0, Msg: err.Error()}
	}
	return prog, nil
}

// MustAssemble is Assemble but panics on error; for examples and tests.
func MustAssemble(name, src string) *isa.Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func (p *parser) parseLine(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	if s == "" {
		return nil
	}
	// Labels: allow several on one line ("a: b: nop") though one is typical.
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if label == "" || strings.ContainsAny(label, " \t,") {
			return p.errf("malformed label %q", s[:i])
		}
		p.b.Label(label)
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	return p.parseInstr(s)
}

// splitOperands splits "r1, [r2+8], r3" into trimmed operand strings.
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func (p *parser) reg(s string) (isa.Reg, error) {
	r, ok := isa.RegByName(s)
	if !ok {
		return 0, p.errf("bad register %q", s)
	}
	return r, nil
}

func (p *parser) imm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, p.errf("bad immediate %q", s)
	}
	return v, nil
}

// mem parses "[reg+imm]", "[reg-imm]" or "[reg]".
func (p *parser) mem(s string) (isa.Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, p.errf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	// Find a +/- separator after the register name.
	sep := -1
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			sep = i
			break
		}
	}
	regPart, immPart := inner, ""
	if sep >= 0 {
		regPart = inner[:sep]
		immPart = inner[sep:]
		if immPart[0] == '+' {
			immPart = immPart[1:]
		}
	}
	r, err := p.reg(strings.TrimSpace(regPart))
	if err != nil {
		return 0, 0, err
	}
	var off int64
	if immPart != "" {
		off, err = p.imm(strings.TrimSpace(immPart))
		if err != nil {
			return 0, 0, err
		}
	}
	return r, off, nil
}

// target parses a branch target: numeric immediate or label reference.
// For labels it returns useLabel=true and the label name.
func (p *parser) target(s string) (imm int64, label string, useLabel bool, err error) {
	if v, e := strconv.ParseInt(s, 0, 64); e == nil {
		return v, "", false, nil
	}
	if s == "" || strings.ContainsAny(s, " \t,[]") {
		return 0, "", false, p.errf("bad jump target %q", s)
	}
	return 0, s, true, nil
}

func (p *parser) wantOperands(ops []string, n int, mnemonic string) error {
	if len(ops) != n {
		return p.errf("%s expects %d operand(s), got %d", mnemonic, n, len(ops))
	}
	return nil
}

func (p *parser) parseInstr(s string) error {
	mnemonic := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return p.errf("unknown instruction %q", mnemonic)
	}
	ops := splitOperands(rest)

	emitRRR := func() error {
		if err := p.wantOperands(ops, 3, mnemonic); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		rs2, err := p.reg(ops[2])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		return nil
	}

	switch op {
	case isa.NOP, isa.MWAIT, isa.SYSCALL, isa.SYSRET, isa.VMCALL, isa.VMRESUME,
		isa.IRET, isa.HLT, isa.HALT:
		if err := p.wantOperands(ops, 0, mnemonic); err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op})

	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.AND, isa.OR, isa.XOR,
		isa.SHL, isa.SHR, isa.SLT, isa.FADD, isa.FMUL:
		return emitRRR()

	case isa.ADDI:
		if err := p.wantOperands(ops, 3, mnemonic); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs1, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		imm, err := p.imm(ops[2])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm})

	case isa.MOVI, isa.FMOVI:
		if err := p.wantOperands(ops, 2, mnemonic); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		imm, err := p.imm(ops[1])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rd: rd, Imm: imm})

	case isa.MOV, isa.FMOV, isa.WRMSR, isa.RDMSR:
		if err := p.wantOperands(ops, 2, mnemonic); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs})

	case isa.LD:
		if err := p.wantOperands(ops, 2, mnemonic); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		base, off, err := p.mem(ops[1])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: base, Imm: off})

	case isa.ST:
		if err := p.wantOperands(ops, 2, mnemonic); err != nil {
			return err
		}
		base, off, err := p.mem(ops[0])
		if err != nil {
			return err
		}
		rs, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rs1: base, Imm: off, Rs2: rs})

	case isa.XCHG:
		if err := p.wantOperands(ops, 2, mnemonic); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		base, off, err := p.mem(ops[1])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: base, Imm: off})

	case isa.FAA, isa.CAS:
		// faa/cas <rd>, [base+off], <rs2>
		if err := p.wantOperands(ops, 3, mnemonic); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		base, off, err := p.mem(ops[1])
		if err != nil {
			return err
		}
		rs2, err := p.reg(ops[2])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: base, Imm: off, Rs2: rs2})

	case isa.JMP:
		if err := p.wantOperands(ops, 1, mnemonic); err != nil {
			return err
		}
		imm, label, useLabel, err := p.target(ops[0])
		if err != nil {
			return err
		}
		if useLabel {
			p.b.EmitRef(isa.Instr{Op: op}, label)
		} else {
			p.b.Emit(isa.Instr{Op: op, Imm: imm})
		}

	case isa.JAL:
		if err := p.wantOperands(ops, 2, mnemonic); err != nil {
			return err
		}
		rd, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		imm, label, useLabel, err := p.target(ops[1])
		if err != nil {
			return err
		}
		if useLabel {
			p.b.EmitRef(isa.Instr{Op: op, Rd: rd}, label)
		} else {
			p.b.Emit(isa.Instr{Op: op, Rd: rd, Imm: imm})
		}

	case isa.JR:
		if err := p.wantOperands(ops, 1, mnemonic); err != nil {
			return err
		}
		rs, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rs1: rs})

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		if err := p.wantOperands(ops, 3, mnemonic); err != nil {
			return err
		}
		rs1, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		rs2, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		imm, label, useLabel, err := p.target(ops[2])
		if err != nil {
			return err
		}
		if useLabel {
			p.b.EmitRef(isa.Instr{Op: op, Rs1: rs1, Rs2: rs2}, label)
		} else {
			p.b.Emit(isa.Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm})
		}

	case isa.MONITOR, isa.START, isa.STOP:
		if err := p.wantOperands(ops, 1, mnemonic); err != nil {
			return err
		}
		rs, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rs1: rs})

	case isa.RPULL:
		// rpull <vtid-reg>, <local-reg>, <remote-reg>
		if err := p.wantOperands(ops, 3, mnemonic); err != nil {
			return err
		}
		vt, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		local, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		remote, err := p.reg(ops[2])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rs1: vt, Rd: local, Imm: int64(remote)})

	case isa.RPUSH:
		// rpush <vtid-reg>, <remote-reg>, <local-reg>
		if err := p.wantOperands(ops, 3, mnemonic); err != nil {
			return err
		}
		vt, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		remote, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		local, err := p.reg(ops[2])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rs1: vt, Imm: int64(remote), Rs2: local})

	case isa.INVTID:
		if err := p.wantOperands(ops, 2, mnemonic); err != nil {
			return err
		}
		r1, err := p.reg(ops[0])
		if err != nil {
			return err
		}
		r2, err := p.reg(ops[1])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Rs1: r1, Rs2: r2})

	case isa.INT:
		if err := p.wantOperands(ops, 1, mnemonic); err != nil {
			return err
		}
		imm, err := p.imm(ops[0])
		if err != nil {
			return err
		}
		p.b.Emit(isa.Instr{Op: op, Imm: imm})

	case isa.NATIVE:
		if err := p.wantOperands(ops, 1, mnemonic); err != nil {
			return err
		}
		if ops[0] == "" {
			return p.errf("native requires a handler symbol")
		}
		p.b.Emit(isa.Instr{Op: op, Sym: ops[0]})

	default:
		return p.errf("instruction %q not supported by the assembler", mnemonic)
	}
	return nil
}
