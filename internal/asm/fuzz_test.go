package asm

import "testing"

// FuzzAsmParse feeds arbitrary text to the assembler. Assemble must return
// an error for bad input, never panic; assembled programs must disassemble
// without panicking either (the printer walks every operand field).
func FuzzAsmParse(f *testing.F) {
	f.Add("main:\n\tmovi r1, 42\n\thalt\n")
	f.Add("\tadd r1, r2, r3\n\tld r4, [r5+8]\n\tst [r6+16], r7\n")
	f.Add("loop:\n\tbeq r1, r2, loop\n\tjal r15, loop\n\tjr r15\n")
	f.Add("\tmonitor r7\n\tmwait\n\tstart r12\n\tstop r12\n")
	f.Add("\trpull r12, r3, pc\n\trpush r12, edp, r3\n\tinvtid r12, r2\n")
	f.Add("\tfmovi f0, 3\n\tfadd f1, f0, f0\n\tfmov f2, f1\n")
	f.Add("\tsyscall\n\tsysret\n\tvmcall\n\tvmresume\n\tiret\n\thlt\n")
	f.Add("\twrmsr r1, r2\n\trdmsr r3, r4\n\tint 3\n\tnative putc\n")
	f.Add("; comment\n# also comment\nmain: nop\n")
	f.Add("bad label: nop\n")
	f.Add("\tmovi r1, 99999999999999999999999\n")
	f.Add("\tld r1, [r2+\n")
	f.Add("\tjmp undefined\n")
	f.Add("a:\na:\n\tnop\n")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		_ = prog.Disassemble()
	})
}
