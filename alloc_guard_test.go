package nocs_test

import (
	"testing"

	"nocs/internal/asm"
	"nocs/internal/hwthread"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

// TestBatchedExecZeroAlloc pins the tentpole zero-alloc property: with
// tracing and fault injection disabled, steady-state batched instruction
// execution performs no heap allocations. A hardware thread spins in an
// infinite ALU loop and the engine is advanced in fixed RunUntil windows;
// after one warmup window (event-heap and freelist growth), each further
// window must allocate nothing — the batch loop runs on predecoded
// instructions, the exec event recycles through the engine's slot freelist,
// and the pipeline charges latency without touching the heap.
func TestBatchedExecZeroAlloc(t *testing.T) {
	prog := asm.MustAssemble("spin", `
main:
	movi r1, 0
loop:
	addi r1, r1, 1
	jmp loop
`)
	m := machine.New()
	if err := m.Core(0).BindProgram(0, prog, "main"); err != nil {
		t.Fatal(err)
	}
	if err := m.Core(0).BootStart(0); err != nil {
		t.Fatal(err)
	}
	const window = 10_000
	deadline := sim.Cycles(window)
	m.RunUntil(deadline) // warmup: grow heap, freelist, decode cache

	allocs := testing.AllocsPerRun(50, func() {
		deadline += window
		m.RunUntil(deadline)
	})
	if allocs != 0 {
		t.Fatalf("steady-state batched execution allocates: %.1f allocs per %d-cycle window, want 0", allocs, window)
	}
	if got := m.Core(0).Retired(); got == 0 {
		t.Fatal("no instructions retired — guard measured nothing")
	}
}

// TestContendedExecZeroAlloc repeats the guard with more runnable threads
// than SMT slots, so the PS-slowdown (ChargedLatency float path) and the
// dense pipeline index are on the measured path too.
func TestContendedExecZeroAlloc(t *testing.T) {
	prog := asm.MustAssemble("spin", `
main:
	movi r1, 0
loop:
	addi r1, r1, 1
	jmp loop
`)
	m := machine.New(machine.WithSMTSlots(2), machine.WithThreads(4))
	for ptid := hwthread.PTID(0); ptid < 4; ptid++ {
		if err := m.Core(0).BindProgram(ptid, prog, "main"); err != nil {
			t.Fatal(err)
		}
		if err := m.Core(0).BootStart(ptid); err != nil {
			t.Fatal(err)
		}
	}
	const window = 10_000
	deadline := sim.Cycles(window)
	m.RunUntil(deadline)

	allocs := testing.AllocsPerRun(50, func() {
		deadline += window
		m.RunUntil(deadline)
	})
	if allocs != 0 {
		t.Fatalf("contended steady-state execution allocates: %.1f allocs per window, want 0", allocs)
	}
}
