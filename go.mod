module nocs

go 1.22
