package nocs_test

import (
	"testing"

	"nocs/internal/asm"
	"nocs/internal/machine"
	"nocs/internal/sim"
	nsync "nocs/internal/sync"
)

const lockAllocBase = 0x1000

// uncontendedLockSource builds a single-thread acquire/bump/release loop
// over the nocs parking mutex: the CAS fast path in, the plain store out.
// iters <= 0 emits an infinite loop (for windowed zero-alloc runs); positive
// iters emits a counted loop ending in halt (for benchmarks).
func uncontendedLockSource(iters int) string {
	l := nsync.ParkingMutex{F: nsync.Nocs}
	r := nsync.Regs{Base: "r10", Me: "r12", Zero: "r8",
		T1: "r1", T2: "r2", T3: "r3", T4: "r4"}
	g := nsync.NewGen("unc")
	g.Label("entry")
	if iters > 0 {
		g.I("movi r9, %d", iters)
	}
	loop, done := g.L("loop"), g.L("done")
	g.Label(loop)
	if iters > 0 {
		g.I("beq r9, r8, %s", done)
	}
	l.EmitAcquire(g, r)
	g.I("ld r5, [r11+0]")
	g.I("addi r5, r5, 1")
	g.I("st [r11+0], r5")
	l.EmitRelease(g, r)
	if iters > 0 {
		g.I("addi r9, r9, -1")
	}
	g.I("jmp %s", loop)
	g.Label(done)
	g.I("halt")
	return g.Source()
}

func bootUncontendedLock(tb testing.TB, iters int) *machine.Machine {
	tb.Helper()
	prog, err := asm.Assemble("uncontended-lock", uncontendedLockSource(iters))
	if err != nil {
		tb.Fatal(err)
	}
	m := machine.New()
	c := m.Core(0)
	if err := c.BindProgram(0, prog, "entry"); err != nil {
		tb.Fatal(err)
	}
	ctx := c.Threads().Context(0)
	ctx.Regs.GPR[8] = 0
	ctx.Regs.GPR[10] = lockAllocBase
	ctx.Regs.GPR[11] = lockAllocBase + 0x100
	if err := c.BootStart(0); err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestUncontendedLockZeroAlloc extends the zero-alloc guard to the sync
// fast path: steady-state uncontended acquire/release (CAS in, store out,
// monitor machinery never engaged) must not allocate. The atomic ops run
// through the general interpreter rather than the batched fast switch, so
// this pins the interpreter's RMW path as heap-free too.
func TestUncontendedLockZeroAlloc(t *testing.T) {
	m := bootUncontendedLock(t, 0)
	const window = 10_000
	deadline := sim.Cycles(window)
	m.RunUntil(deadline) // warmup: event heap, freelist, decode cache

	allocs := testing.AllocsPerRun(50, func() {
		deadline += window
		m.RunUntil(deadline)
	})
	if allocs != 0 {
		t.Fatalf("uncontended acquire/release allocates: %.1f allocs per %d-cycle window, want 0", allocs, window)
	}
	if got := m.Mem().Read(lockAllocBase + 0x100); got == 0 {
		t.Fatal("no critical sections completed — guard measured nothing")
	}
}

// BenchmarkUncontendedLock times the uncontended acquire/release round trip
// and feeds the scripts/ci.sh allocation gate (scripts/alloc_baseline.txt).
func BenchmarkUncontendedLock(b *testing.B) {
	const iters = 2000
	b.ResetTimer()
	var retired uint64
	var cycles sim.Cycles
	for i := 0; i < b.N; i++ {
		m := bootUncontendedLock(b, iters)
		m.Run(0)
		if got := m.Mem().Read(lockAllocBase + 0x100); got != iters {
			b.Fatalf("counter %d, want %d", got, iters)
		}
		retired = m.Retired()
		cycles = m.Now()
	}
	b.ReportMetric(float64(retired), "sim-instrs/op")
	b.ReportMetric(float64(cycles)/iters, "sim-cycles/acquire")
}
