package nocs_test

import (
	"strings"
	"testing"

	"nocs/internal/asm"
	"nocs/internal/core"
	"nocs/internal/device"
	"nocs/internal/hwthread"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

// TestConsecutiveExceptions exercises §3.2's "Consecutive Exceptions":
// thread A divides by zero and is handled by thread B; B itself divides by
// zero while handling, and is handled by thread C; C resolves both. "Nothing
// prevents arbitrarily nested exceptions, so long as another thread C
// handles B's exceptions."
func TestConsecutiveExceptions(t *testing.T) {
	m := machine.New()
	c := m.Core(0)
	const (
		edpA = 0x2000
		edpB = 0x2100
	)

	a := asm.MustAssemble("A", `
main:
	movi r1, 5
	movi r2, 0
	div r3, r1, r2   ; fault #1
	movi r9, 1       ; resumed by B (eventually, via C)
	halt
`)
	// B: waits on A's doorbell, then itself faults before finishing.
	b := asm.MustAssemble("B", `
main:
	movi r1, 0x2000
	monitor r1
	mwait
	movi r4, 7
	movi r5, 0
	div r6, r4, r5   ; fault #2, while handling A's fault
	halt             ; never reached: C finishes the work instead
`)
	// C: waits on B's doorbell, then resolves everything — patches A past
	// its faulting instruction and restarts it (supervisor powers).
	c.RegisterNative("c.resolve", func(cc *core.Core, tc *hwthread.Context) sim.Cycles {
		cc.ArmWatches(tc, edpB+hwthread.DescCauseOff)
		d := hwthread.ReadDescriptor(cc.Mem(), edpB)
		if d.Cause == hwthread.ExcNone {
			if tc.State == hwthread.Runnable {
				cc.WaitArmed(tc)
			}
			return 0
		}
		hwthread.ClearDescriptor(cc.Mem(), edpB)
		// Resolve A's original fault: skip the div and restart A.
		da := hwthread.ReadDescriptor(cc.Mem(), edpA)
		if da.Cause != hwthread.ExcDivideByZero {
			t.Errorf("A's descriptor: %+v", da)
		}
		at := cc.Threads().Context(0)
		at.Regs.PC = da.PC + 1
		if err := cc.StartThreadSupervised(0); err != nil {
			t.Error(err)
		}
		return 100
	})
	cProg := asm.MustAssemble("C", "svc:\n\tnative c.resolve\n\tjmp svc")

	if err := c.BindProgram(0, a, "main"); err != nil {
		t.Fatal(err)
	}
	if err := c.BindProgram(1, b, "main"); err != nil {
		t.Fatal(err)
	}
	if err := c.BindProgram(2, cProg, "svc"); err != nil {
		t.Fatal(err)
	}
	c.Threads().Context(0).Regs.EDP = edpA
	c.Threads().Context(1).Regs.EDP = edpB
	c.Threads().Context(2).Regs.Mode = 1

	c.BootStart(2)
	c.BootStart(1)
	m.Run(0) // B and C park
	c.BootStart(0)
	m.Run(0)

	if err := m.Fatal(); err != nil {
		t.Fatalf("machine fatal: %v", err)
	}
	if got := c.Threads().Context(0).Regs.GPR[9]; got != 1 {
		t.Fatalf("A did not resume after the two-level chain (r9=%d)", got)
	}
	if c.Threads().Context(1).State != hwthread.Disabled {
		t.Fatal("B should be disabled by its own fault")
	}
}

// TestHandlerChainEndsInTripleFault: §3.2 "any handler chain must end
// somewhere, at a lowest-level kernel thread that does not have an exception
// handler. Triggering an exception in a thread without a handler ...
// indicates a serious kernel bug akin to a triple-fault."
func TestHandlerChainEndsInTripleFault(t *testing.T) {
	m := machine.New()
	c := m.Core(0)
	// A faults; B (its handler) faults too, and B has no EDP.
	a := asm.MustAssemble("A", "main:\n\tmovi r1, 1\n\tmovi r2, 0\n\tdiv r3, r1, r2\n\thalt")
	b := asm.MustAssemble("B", `
main:
	movi r1, 0x2000
	monitor r1
	mwait
	movi r4, 1
	movi r5, 0
	div r6, r4, r5   ; fault with no handler: machine-fatal
	halt
`)
	c.BindProgram(0, a, "main")
	c.BindProgram(1, b, "main")
	c.Threads().Context(0).Regs.EDP = 0x2000
	// B deliberately has EDP = 0.
	c.BootStart(1)
	m.Run(0)
	c.BootStart(0)
	m.Run(0)
	if err := m.Fatal(); err == nil {
		t.Fatal("expected triple-fault analog")
	} else if !strings.Contains(err.Error(), "no-handler") {
		t.Fatalf("fatal: %v", err)
	}
}

// TestTimerDrivenScheduler is §3.1's APIC example end-to-end: "each core's
// APIC timer can increment a counter every time a timer interrupt is
// triggered. In turn, the hardware thread hosting the kernel scheduler can
// monitor/mwait on that memory location."
func TestTimerDrivenScheduler(t *testing.T) {
	m := machine.New()
	c := m.Core(0)
	tm, err := m.NewTimer(device.TimerConfig{CounterAddr: 0x100, Period: 5000}, device.Signal{})
	if err != nil {
		t.Fatal(err)
	}

	k := kernel.NewNocs(c)
	ticks := 0
	if _, err := k.SpawnService("scheduler", func() []int64 { return []int64{0x100} },
		func(tc *hwthread.Context) sim.Cycles {
			if c.ReadWord(0x100) == 0 {
				return 0
			}
			// The scheduler body: rebalance, set priorities — modeled cost.
			ticks++
			if ticks >= 10 {
				tm.Stop()
			}
			c.WriteWord(0x100, 0)
			return 300
		}); err != nil {
		t.Fatal(err)
	}
	tm.Start()
	m.RunUntil(200000)
	if ticks != 10 {
		t.Fatalf("scheduler ran %d times, want 10", ticks)
	}
	raised, _, _, _ := m.IRQ().Stats()
	if raised != 0 {
		t.Fatal("timer used interrupts on the nocs path")
	}
}

// TestMixedPersonalityMachine runs a legacy kernel on core 0 and a nocs
// kernel on core 1 of the same machine, simultaneously, sharing memory.
func TestMixedPersonalityMachine(t *testing.T) {
	m := machine.New(machine.WithCores(2))

	kl := kernel.NewLegacy(m.Core(0))
	kl.RegisterSyscall(1, func(tc *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		return args[0] * 2, 100
	})
	kn := kernel.NewNocs(m.Core(1))
	kn.RegisterSyscall(1, func(tc *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
		return args[0] * 3, 100
	})
	if _, err := kn.ServeSyscalls([]hwthread.PTID{0}, 0x800000); err != nil {
		t.Fatal(err)
	}

	user := asm.MustAssemble("u", `
main:
	movi r1, 1
	movi r2, 10
	syscall
	mov r9, r1
	halt
`)
	m.Core(0).BindProgram(0, user, "main")
	m.Core(1).BindProgram(0, user, "main")
	m.Run(0)
	m.Core(0).BootStart(0)
	m.Core(1).BootStart(0)
	m.Run(0)
	if err := m.Fatal(); err != nil {
		t.Fatal(err)
	}
	if got := m.Core(0).Threads().Context(0).Regs.GPR[9]; got != 20 {
		t.Fatalf("legacy syscall result %d", got)
	}
	if got := m.Core(1).Threads().Context(0).Regs.GPR[9]; got != 30 {
		t.Fatalf("nocs syscall result %d", got)
	}
}

// TestEndToEndDeterminism runs a nontrivial machine (NIC + services + user
// threads) twice and demands bit-identical cycle counts.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() (sim.Cycles, uint64) {
		m := machine.New()
		k := kernel.NewNocs(m.Core(0))
		nic, err := m.NewNIC(device.NICConfig{
			RingBase: 0x100000, BufBase: 0x200000,
			TailAddr: 0x300000, HeadAddr: 0x300008,
		}, device.Signal{})
		if err != nil {
			t.Fatal(err)
		}
		served := 0
		k.ServeDevice("rx", nic.TailAddr(), 0x300008, 500,
			func(seq int64, at sim.Cycles) { served++ })
		k.RegisterSyscall(1, func(tc *hwthread.Context, args [4]int64) (int64, sim.Cycles) {
			return args[0] + 1, 80
		})
		k.ServeSyscalls([]hwthread.PTID{0, 1}, 0x800000)
		user := asm.MustAssemble("u", `
main:
	movi r7, 0
loop:
	movi r1, 1
	mov r2, r7
	syscall
	mov r7, r1
	movi r8, 20
	blt r7, r8, loop
	halt
`)
		m.Core(0).BindProgram(0, user, "main")
		m.Core(0).BindProgram(1, user, "main")
		rng := sim.NewRNG(99)
		at := sim.Cycles(100)
		for i := 0; i < 30; i++ {
			at += sim.Cycles(rng.Exp(3000))
			i := i
			m.Shard(0).At(at, "pkt", func() { nic.Deliver([]int64{int64(i)}) })
		}
		m.Run(0)
		m.Core(0).BootStart(0)
		m.Core(0).BootStart(1)
		m.Run(0)
		if err := m.Fatal(); err != nil {
			t.Fatal(err)
		}
		if served != 30 {
			t.Fatalf("served %d packets", served)
		}
		return m.Now(), m.Retired()
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, r1, t2, r2)
	}
}

// TestThousandThreadCore spins up a core with 1024 hardware threads — the
// paper's upper ambition — and runs a wave of thread-per-request work
// through it.
func TestThousandThreadCore(t *testing.T) {
	m := machine.New(machine.WithThreads(1024), machine.WithSMTSlots(4))
	k := kernel.NewNocs(m.Core(0))
	r := k.NewRequestRunner(500)
	done := 0
	const requests = 1000
	for i := 0; i < requests; i++ {
		if err := r.Start(hwthread.PTID(i), 2000, func(at sim.Cycles) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(0)
	if done != requests {
		t.Fatalf("completed %d of %d", done, requests)
	}
	// 1000 threads × 2000 cycles on 4 slots ≥ 500k cycles of span.
	if m.Now() < 400000 {
		t.Fatalf("implausibly fast: %v", m.Now())
	}
	// State storage must have spilled beyond the RF (only ~240 base
	// contexts fit in 64KB).
	if _, n := m.Core(0).StateStore().Occupancy(0); n >= 1024 {
		t.Fatal("RF held all 1024 contexts; spill expected")
	}
}
