// Package nocs is a deterministic discrete-event reproduction of the
// hardware threading architecture proposed in "A Case Against (Most)
// Context Switches" (Humphries, Kaffes, Mazières, Kozyrakis — HotOS 2021).
//
// The module root holds the benchmark harness (bench_test.go — one
// testing.B per reproduced table/figure) and the cross-subsystem
// integration tests. The implementation lives under internal/:
//
//   - internal/sim        — virtual clock, event engine, deterministic RNG
//   - internal/isa, asm   — the ISA with the paper's §3.1 instructions
//   - internal/mem        — memory, MMIO, caches, DMA
//   - internal/monitor    — generalized monitor/mwait (DMA-visible)
//   - internal/hwthread   — ptids, TDT permissions, exception descriptors
//   - internal/statestore — §4 thread-state storage tiers
//   - internal/pipeline   — SMT slots, hardware RR/PS, priorities
//   - internal/core       — the core model (+ legacy mode)
//   - internal/machine    — multicore machines and device wiring
//   - internal/device     — NIC, timer, SSD
//   - internal/irq        — legacy interrupts and IPIs
//   - internal/kernel     — legacy & nocs kernel personalities
//   - internal/hypervisor — VM-exit handling, trusted to fully untrusted
//   - internal/ukernel    — microkernel services, mailbox IPC
//   - internal/netstack   — network stack as a parked hardware thread
//   - internal/workload, metrics, bench — experiments
//
// Entry points: cmd/nocsim (experiment runner), cmd/nocsasm (assembler),
// and the seven programs under examples/. See README.md, DESIGN.md, and
// EXPERIMENTS.md.
package nocs
