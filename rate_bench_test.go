package nocs_test

import (
	"testing"

	"nocs/internal/asm"
	"nocs/internal/machine"
)

// benchmarkInstructionRate runs a counted ALU loop on one hardware thread
// and reports simulated instructions per host operation plus the sustained
// simulated-instruction rate (sim-instrs/sec) — the headline figure tracked
// in the BENCH_*.json trajectory.
func benchmarkInstructionRate(b *testing.B) {
	prog := asm.MustAssemble("rate", `
main:
	movi r1, 0
	movi r2, 100000
loop:
	addi r1, r1, 1
	blt r1, r2, loop
	halt
`)
	b.ResetTimer()
	var retired, total uint64
	for i := 0; i < b.N; i++ {
		m := machine.New()
		if err := m.Core(0).BindProgram(0, prog, "main"); err != nil {
			b.Fatal(err)
		}
		if err := m.Core(0).BootStart(0); err != nil {
			b.Fatal(err)
		}
		m.Run(0)
		retired = m.Core(0).Retired()
		total += retired
	}
	b.ReportMetric(float64(retired), "sim-instrs/op")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, "sim-instrs/sec")
	}
}
