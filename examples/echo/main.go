// Echo: a complete network application on the nocs stack. The network
// stack is a parked hardware thread (TAS/Snap without the dedicated
// polling core); the application is another hardware thread blocked on its
// socket's delivery doorbell. Packets arrive by NIC DMA, get demultiplexed
// to the socket, wake the app, and the app posts echo replies through the
// stack's send mailbox — every hop is a monitor/mwait wake, and the
// interrupt counter stays at zero.
//
// Run with: go run ./examples/echo
package main

import (
	"fmt"
	"log"

	"nocs/internal/asm"
	"nocs/internal/device"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/netstack"
)

const (
	port    = 7
	packets = 5
	echoBuf = 0x700000
	mailbox = 0x5F0000 // stack's send mailbox (see netstack.Config)
)

func main() {
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	nic, err := m.NewNIC(device.NICConfig{
		RingBase: 0x100000, BufBase: 0x200000,
		TailAddr: 0x300000, HeadAddr: 0x300008,
		TXRingBase: 0x310000, TXDoorbell: 0x9100_0000, TXCompAddr: 0x320000,
	}, device.Signal{})
	if err != nil {
		log.Fatal(err)
	}
	st, err := netstack.New(k, nic, netstack.Config{
		SocketBase: 0x500000, BufBase: 0x580000, SendMailbox: mailbox,
	})
	if err != nil {
		log.Fatal(err)
	}
	sock, err := st.Bind(port)
	if err != nil {
		log.Fatal(err)
	}

	// The echo application, entirely in assembly. Registers set by the
	// host: r1 = socket doorbell, r10 = socket ring base, r13 = echo buffer.
	// Socket slots live at ring+16+16*i: payload address, payload words.
	app := asm.MustAssemble("echo", fmt.Sprintf(`
main:
	movi r9, 0          ; packets echoed
loop:
	monitor r1
	mwait
next:
	ld r2, [r10+8]      ; consumed
	ld r3, [r1+0]       ; delivered
	bge r2, r3, loop    ; nothing pending: block again
	; slot address = ring + 16 + 16*(consumed %% 16)
	movi r4, 15
	and r4, r2, r4
	movi r5, 16
	mul r4, r4, r5
	add r4, r4, r10
	ld r6, [r4+16]      ; payload address
	ld r7, [r4+24]      ; payload words
	; build the echo: swap dst/src ports, copy payload body
	ld r5, [r6+8]       ; src port
	st [r13+0], r5      ; -> dst
	ld r5, [r6+0]       ; dst port
	st [r13+8], r5      ; -> src
	movi r4, 2          ; word index
copy:
	bge r4, r7, send
	movi r5, 8
	mul r5, r4, r5
	add r5, r5, r6
	ld r5, [r5+0]
	movi r8, 8
	mul r8, r4, r8
	add r8, r8, r13
	st [r8+0], r5
	addi r4, r4, 1
	jmp copy
send:
	; post the send mailbox: addr, len, status=1
	st [r12+8], r13
	st [r12+16], r7
	movi r5, 1
	st [r12+0], r5
	; consume the slot
	addi r2, r2, 1
	st [r10+8], r2
	addi r9, r9, 1
	movi r5, %d
	blt r9, r5, next
	halt
`, packets))
	c := m.Core(0)
	if err := c.BindProgram(0, app, "main"); err != nil {
		log.Fatal(err)
	}
	ctx := c.Threads().Context(0)
	ctx.Regs.GPR[1] = sock.DoorbellAddr()
	ctx.Regs.GPR[10] = sock.DoorbellAddr() // ring base == doorbell addr
	ctx.Regs.GPR[12] = mailbox
	ctx.Regs.GPR[13] = echoBuf
	if err := c.BootStart(0); err != nil {
		log.Fatal(err)
	}

	echoed := 0
	nic.OnTransmit = func(p []int64) {
		echoed++
		fmt.Printf("  wire out: dst=%d src=%d payload=%v\n", p[0], p[1], p[2:])
	}

	m.Run(0) // everything parks
	fmt.Printf("echo server on port %d; delivering %d packets by DMA\n\n", port, packets)
	for i := 0; i < packets; i++ {
		nic.Deliver([]int64{port, int64(100 + i), int64(1000 + i), int64(2000 + i)})
		m.Run(0)
	}
	if err := m.Fatal(); err != nil {
		log.Fatal(err)
	}

	rx, drop, sent := st.Stats()
	raised, _, _, _ := m.IRQ().Stats()
	fmt.Printf("\nstack: received %d, dropped %d, sent %d — interrupts raised: %d\n",
		rx, drop, sent, raised)
	fmt.Printf("echoed %d packets in %v of simulated time\n", echoed, m.Now())
}
