// Filesystem: "file systems as processes" (§2), composed all the way down.
// Four hardware threads cooperate with nothing but monitor/mwait wakes:
//
//	app ptid ──mailbox──▶ FS ptid ──mailbox──▶ driver ptid ──doorbell──▶ SSD
//	   ▲                                                                  │
//	   └──────────────── replies propagate back the same way ◀────────────┘
//
// The app creates a file, writes its block, reads it back, and stats it —
// every call a blocking synchronous operation, yet no syscall, scheduler,
// or interrupt appears anywhere on the path.
//
// Run with: go run ./examples/filesystem
package main

import (
	"fmt"
	"log"

	"nocs/internal/asm"
	"nocs/internal/device"
	"nocs/internal/fs"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/ukernel"
)

func main() {
	m := machine.New()
	k := kernel.NewNocs(m.Core(0))
	ssd, err := m.NewSSD(device.SSDConfig{
		SQBase: 0x400000, CQBase: 0x410000,
		DoorbellAddr: 0x9000_0000, CQTailAddr: 0x420000,
	}, device.Signal{})
	if err != nil {
		log.Fatal(err)
	}
	bd, err := kernel.NewBlockDev(k, ssd, 0x430000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fsys, err := fs.New(k, bd, 0x640000, 4)
	if err != nil {
		log.Fatal(err)
	}

	// The application: create("report.txt"), write, read, stat — blocking
	// calls through the FS mailbox, results stored at 0x660000.
	src := "main:\n\tmovi r14, 0x660000\n"
	calls := []struct {
		name string
		op   int64
		arg  int64
	}{
		{"create(\"report\")", fs.OpCreate, 0x7265706f}, // name token
		{"write(fid)", fs.OpWrite, 0},
		{"read(fid)", fs.OpRead, 0},
		{"stat(fid)", fs.OpStat, 0},
	}
	for i, cl := range calls {
		src += fmt.Sprintf("\tmovi r2, %d\n\tmovi r3, %d\n", cl.op, cl.arg)
		src += ukernel.ClientCallSource(fmt.Sprintf("fs%d", i))
		src += fmt.Sprintf("\tst [r14+%d], r1\n", i*8)
	}
	src += "\thalt\n"
	prog := asm.MustAssemble("app", src)
	if err := m.Core(0).BindProgram(0, prog, "main"); err != nil {
		log.Fatal(err)
	}
	fsys.SetupClientRegs(m.Core(0).Threads().Context(0), 0)

	m.Run(0) // park FS and driver
	devTime := ssd.Config().BaseLatency + ssd.Config().PerWord*8
	fmt.Printf("4-thread chain: app → fs → blockdev → ssd (device time %d cycles/IO)\n\n", devTime)
	start := m.Now()
	m.Core(0).BootStart(0)
	m.Run(0)
	if err := m.Fatal(); err != nil {
		log.Fatal(err)
	}

	for i, cl := range calls {
		fmt.Printf("  %-18s -> %d\n", cl.name, m.Mem().Read(0x660000+int64(i)*8))
	}
	creates, writes, reads, stats, errs := fsys.Stats()
	bdReads, bdWrites, _, _ := bd.Stats()
	raised, _, _, _ := m.IRQ().Stats()
	fmt.Printf("\nfs ops: %d create, %d write, %d read, %d stat, %d errors\n",
		creates, writes, reads, stats, errs)
	fmt.Printf("driver: %d reads, %d writes — interrupts raised: %d\n", bdReads, bdWrites, raised)
	fmt.Printf("total: %v for 2 block IOs + 2 metadata ops\n", m.Now()-start)
}
