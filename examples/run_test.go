// Package examples_test builds and runs every example program end to end.
// Each example is a self-contained main package demonstrating one part of
// the paper's design; this test keeps them all compiling and producing
// their documented (deterministic) output as the simulator evolves.
package examples_test

import (
	"os/exec"
	"strings"
	"testing"
)

// want maps each example directory to a substring its output must contain.
// The chosen lines sit at or near the end of each run, so a crash or early
// exit cannot pass, and every value is deterministic (fixed seeds, no wall
// clock).
var want = map[string]string{
	"echo":        "wire out: dst=104",
	"filesystem":  "stat(fid)",
	"hypervisor":  "nocs hw-thread chain",
	"microkernel": "direct hw-thread mailbox",
	"netserver":   "interrupts: 0",
	"quickstart":  "consumer received 3 messages, sum=42",
	"sandbox":     "reviving filter",
	"scheduler":   "batch-etl",
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile and run full simulations; skipped with -short")
	}
	for name, substr := range want {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = ".." // module root, so the ./examples/... path resolves
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
			if !strings.Contains(string(out), substr) {
				t.Fatalf("example %s output missing %q:\n%s", name, substr, out)
			}
		})
	}
}
