// Quickstart: two hardware threads communicating with the paper's
// monitor/mwait and start/stop instructions — no interrupts, no scheduler.
//
// Thread 0 (consumer) monitors a mailbox word and blocks in mwait.
// Thread 1 (producer) computes three values, stores each into the mailbox,
// and finally halts. Every store wakes the consumer in ~20 cycles (the
// pipeline-depth start latency of an RF-resident thread).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nocs/internal/asm"
	"nocs/internal/hwthread"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

const mailbox = 0x1000

func main() {
	m := machine.New()
	core := m.Core(0)

	consumer := asm.MustAssemble("consumer", `
main:
	movi r1, 0x1000    ; mailbox address
	movi r3, 0         ; sum of received values
	movi r4, 0         ; messages received
loop:
	monitor r1         ; arm the watch
	mwait              ; block until the producer stores
	ld r2, [r1+0]
	add r3, r3, r2
	addi r4, r4, 1
	movi r5, 3
	blt r4, r5, loop
	halt
`)

	producer := asm.MustAssemble("producer", `
main:
	movi r1, 0x1000
	movi r2, 0
	movi r5, 0         ; loop counter — registers only happen to boot as 0,
	                   ; a supervisor may hand this thread a dirty register
	                   ; file, so never rely on implicit zeroing
	movi r6, 10
	movi r7, 3
produce:
	addi r2, r2, 7     ; "compute" the next value
	st [r1+0], r2      ; store wakes the consumer
	; spin briefly so the consumer drains before the next value
	movi r8, 0
pause:
	addi r8, r8, 1
	blt r8, r6, pause
	addi r5, r5, 1
	blt r5, r7, produce
	halt
`)

	if err := core.BindProgram(0, consumer, "main"); err != nil {
		log.Fatal(err)
	}
	if err := core.BindProgram(1, producer, "main"); err != nil {
		log.Fatal(err)
	}

	// Trace every monitor wakeup.
	core.OnWake = func(p hwthread.PTID, addr int64, at sim.Cycles) {
		fmt.Printf("  t=%-6d ptid %d woke on write to %#x\n", at, p, addr)
	}

	fmt.Println("consumer program:")
	fmt.Print(indent(consumer.Disassemble()))
	fmt.Println("\nrunning...")

	if err := core.BootStart(0); err != nil {
		log.Fatal(err)
	}
	if err := core.BootStart(1); err != nil {
		log.Fatal(err)
	}
	m.Run(0)
	if err := m.Fatal(); err != nil {
		log.Fatal(err)
	}

	c := core.Threads().Context(0)
	fmt.Printf("\ndone at t=%v\n", m.Now())
	fmt.Printf("consumer received %d messages, sum=%d (want 7+14+21=42)\n",
		c.Regs.GPR[4], c.Regs.GPR[3])
	fmt.Printf("consumer wakeups: %d, instructions retired machine-wide: %d\n",
		c.Wakeups, m.Retired())
	wk, imm, _ := m.Monitor().Stats()
	fmt.Printf("monitor engine: %d wakeups delivered (%d without blocking)\n", wk, imm)
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
