; selfwake.asm — a single-thread tour of the proposed ISA, runnable with:
;
;   go run ./cmd/nocsasm -run -trace 30 examples/selfwake.asm
;
; It demonstrates the monitor/mwait no-lost-wakeup rule: the thread arms a
; watch on a mailbox, stores to that mailbox itself, and the following mwait
; completes immediately instead of sleeping forever (the write was "pending").
; It then does a little arithmetic so the register dump shows results.

main:
	movi r1, 0x1000     ; mailbox address
	monitor r1          ; arm the watch FIRST
	movi r2, 7
	st [r1+0], r2       ; our own store hits the armed watch...
	mwait               ; ...so this completes immediately (no lost wakeup)
	ld r3, [r1+0]       ; r3 = 7

	; compute 7 * 6 = 42 the slow way
	movi r4, 0          ; accumulator
	movi r5, 0          ; counter
	movi r6, 6
loop:
	add r4, r4, r3
	addi r5, r5, 1
	blt r5, r6, loop

	st [r1+8], r4       ; publish the answer next to the mailbox
	halt
