// Scheduler: the §4 role change for the OS scheduler, live. Instead of
// multiplexing software threads onto hardware threads, the scheduler is
// itself a hardware thread parked in mwait on a doorbell; it reacts to new
// work at wakeup latency, dispatches tasks to worker hardware threads by
// priority, and only queues in software when every worker is busy — the
// overflow the paper wants to be "as uncommon as swapping memory pages to
// disk".
//
// Run with: go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"nocs/internal/hwthread"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

func main() {
	m := machine.New(
		machine.WithThreads(64),
		machine.WithSMTSlots(2),
	)
	k := kernel.NewNocs(m.Core(0))
	workers := []hwthread.PTID{0, 1, 2, 3}
	s, err := kernel.NewScheduler(k, workers, 0x700000, 200)
	if err != nil {
		log.Fatal(err)
	}
	m.Run(0) // park the scheduler thread

	type job struct {
		name   string
		demand sim.Cycles
		prio   int
	}
	jobs := []job{
		{"batch-compress", 20000, 1},
		{"batch-index", 18000, 1},
		{"batch-rescore", 22000, 1},
		{"batch-etl", 16000, 1},
		{"rpc-hot-path", 2000, 9},
		{"rpc-hot-path", 2000, 9},
		{"gc-background", 30000, 1},
		{"rpc-hot-path", 2000, 9},
	}

	fmt.Printf("4 worker hardware threads, 2 SMT slots; %d jobs submitted at once\n\n", len(jobs))
	var submitAt sim.Cycles
	for _, j := range jobs {
		j := j
		s.Submit(kernel.Task{Demand: j.demand, Priority: j.prio,
			OnDone: func(at sim.Cycles) {
				fmt.Printf("  t=%-8d done: %-15s (demand %5d, prio %d, waited+ran %d cycles)\n",
					int64(at), j.name, int64(j.demand), j.prio, int64(at-submitAt))
			}})
	}
	m.Run(0)
	if err := m.Fatal(); err != nil {
		log.Fatal(err)
	}

	d, c, maxQ := s.Stats()
	fmt.Printf("\ndispatched %d, completed %d, peak software queue %d\n", d, c, maxQ)
	fmt.Println("high-priority RPCs jumped the queue and finished first, while the")
	fmt.Println("scheduler thread itself consumed zero cycles between doorbell rings.")
}
