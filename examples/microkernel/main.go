// Microkernel: a file-system service isolated in its own hardware thread,
// called through the XPC-like mailbox IPC of §2 "Faster Microkernels and
// Container Proxies" — and the same service behind the two legacy
// mechanisms, for comparison.
//
// Run with: go run ./examples/microkernel
package main

import (
	"fmt"
	"log"

	"nocs/internal/asm"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/sim"
	"nocs/internal/ukernel"
)

const calls = 100

func main() {
	fmt.Printf("FS service: %d calls of 800 cycles each, three IPC mechanisms\n\n", calls)

	legacyClient := asm.MustAssemble("client", fmt.Sprintf(`
main:
	movi r7, 0
loop:
	movi r1, 10     ; SYS_fs
	movi r2, 1      ; op = read
	mov r3, r7      ; arg = block number
	syscall
	addi r7, r7, 1
	movi r8, %d
	blt r7, r8, loop
	halt
`, calls))

	// Mechanism 1: service compiled into the kernel (monolithic).
	{
		m := machine.New()
		k := kernel.NewLegacy(m.Core(0))
		ukernel.RegisterMonolithic(k, 10, ukernel.FSWork)
		m.Core(0).BindProgram(0, legacyClient, "main")
		m.Core(0).BootStart(0)
		m.Run(0)
		fmt.Printf("%-34s %8.1f cycles/call\n", "monolithic syscall:", float64(m.Now())/calls)
	}

	// Mechanism 2: service as a process, scheduler-mediated IPC.
	{
		m := machine.New()
		k := kernel.NewLegacy(m.Core(0))
		ukernel.RegisterLegacyIPC(k, 10, ukernel.LegacyIPCCosts{}, ukernel.FSWork)
		m.Core(0).BindProgram(0, legacyClient, "main")
		m.Core(0).BootStart(0)
		m.Run(0)
		fmt.Printf("%-34s %8.1f cycles/call\n", "microkernel via scheduler:", float64(m.Now())/calls)
	}

	// Mechanism 3: service in its own hardware thread, direct mailbox IPC.
	{
		m := machine.New()
		k := kernel.NewNocs(m.Core(0))
		svc, err := ukernel.NewMailboxService(k, "fs", 0xB00000, 1, ukernel.FSWork)
		if err != nil {
			log.Fatal(err)
		}
		src := fmt.Sprintf(`
main:
	movi r7, 0
loop:
	movi r2, 1
	mov r3, r7
%s
	addi r7, r7, 1
	movi r8, %d
	blt r7, r8, loop
	halt
`, ukernel.ClientCallSource("fs"), calls)
		client := asm.MustAssemble("client", src)
		if err := m.Core(0).BindProgram(0, client, "main"); err != nil {
			log.Fatal(err)
		}
		svc.SetupClientRegs(m.Core(0).Threads().Context(0), 0)
		m.Run(0) // park the service
		start := m.Now()
		m.Core(0).BootStart(0)
		m.RunUntil(start + sim.Cycles(calls)*50000)
		if err := m.Fatal(); err != nil {
			log.Fatal(err)
		}
		elapsed := m.Core(0).Threads().Context(0).LastHalt - start
		fmt.Printf("%-34s %8.1f cycles/call   (service handled %d)\n",
			"direct hw-thread mailbox:", float64(elapsed)/calls, svc.Calls())
	}

	fmt.Println("\nThe hardware-thread service keeps microkernel isolation while")
	fmt.Println("beating even the monolithic build — no mode switch, no scheduler.")
}
