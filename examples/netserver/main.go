// Netserver: the paper's "Fast I/O without Inefficient Polling" story as a
// runnable comparison. A NIC delivers a Poisson stream of packets by DMA;
// three server builds process them:
//
//   - legacy: interrupt-driven — every packet batch costs an IRQ-context
//     entry/exit on the victim core;
//   - polling: a dedicated thread spins on the RX tail (fast, but the
//     thread never sleeps);
//   - nocs: a hardware thread mwait-blocked on the RX tail wakes in tens of
//     cycles per batch, and costs nothing while idle.
//
// Run with: go run ./examples/netserver
package main

import (
	"fmt"
	"log"

	"nocs/internal/asm"
	"nocs/internal/core"
	"nocs/internal/device"
	"nocs/internal/hwthread"
	"nocs/internal/irq"
	"nocs/internal/kernel"
	"nocs/internal/machine"
	"nocs/internal/metrics"
	"nocs/internal/sim"
	"nocs/internal/workload"
)

const (
	packets   = 2000
	perPacket = sim.Cycles(1200) // protocol processing per packet
	loadFrac  = 0.6
)

func nic(m *machine.Machine, sig device.Signal) *device.NIC {
	n, err := m.NewNIC(device.NICConfig{
		RingBase: 0x100000, BufBase: 0x200000,
		TailAddr: 0x300000, HeadAddr: 0x300008,
	}, sig)
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func arrivals(m *machine.Machine, n *device.NIC) []sim.Cycles {
	rng := sim.NewRNG(7)
	arr := workload.NewPoissonArrivals(float64(perPacket)/loadFrac, rng)
	times := make([]sim.Cycles, packets)
	at := sim.Cycles(1000)
	for i := 0; i < packets; i++ {
		at += arr.Next()
		i := i
		m.Engine().At(at, "pkt", func() { times[i] = n.Deliver([]int64{int64(i)}) })
	}
	return times
}

func summarize(name string, h *metrics.Histogram, extra string) {
	p50, p99, _, mean := h.Summary()
	fmt.Printf("%-10s  p50 %6d cyc (%6.1f ns)   p99 %6d   mean %8.1f   %s\n",
		name, p50, sim.Cycles(p50).Nanos(0), p99, mean, extra)
}

func main() {
	fmt.Printf("%d packets, Poisson arrivals at %.0f%% of one-thread capacity, %d cycles/packet\n\n",
		packets, loadFrac*100, perPacket)

	// --- nocs: mwait hardware thread ---
	{
		m := machine.New()
		k := kernel.NewNocs(m.Core(0))
		n := nic(m, device.Signal{})
		h := metrics.NewHistogram()
		var times []sim.Cycles
		if _, err := k.ServeDevice("rx", n.TailAddr(), 0x300008, perPacket,
			func(seq int64, at sim.Cycles) {
				if times[seq] > 0 {
					h.RecordCycles(at - times[seq])
				}
			}); err != nil {
			log.Fatal(err)
		}
		times = arrivals(m, n)
		m.Run(0)
		if err := m.Fatal(); err != nil {
			log.Fatal(err)
		}
		raised, _, _, _ := m.IRQ().Stats()
		summarize("nocs", h, fmt.Sprintf("interrupts: %d, machine instrs: %d", raised, m.Retired()))
	}

	// --- legacy: interrupt-driven ---
	{
		m := machine.New()
		k := kernel.NewLegacy(m.Core(0))
		n := nic(m, device.Signal{IRQ: m.IRQ(), Vector: 33})
		h := metrics.NewHistogram()
		var times []sim.Cycles
		if err := k.ServeNICWithIRQ(m.IRQ(), 33, 0, n.TailAddr(), 0x300008, perPacket,
			func(seq int64, at sim.Cycles) {
				if times[seq] > 0 {
					h.RecordCycles(at - times[seq])
				}
			}); err != nil {
			log.Fatal(err)
		}
		// Victim thread the IRQs preempt.
		busy := asm.MustAssemble("busy", "main:\nloop:\n\taddi r1, r1, 1\n\tjmp loop")
		if err := m.Core(0).BindProgram(0, busy, "main"); err != nil {
			log.Fatal(err)
		}
		m.Core(0).BootStart(0)
		times = arrivals(m, n)
		m.RunUntil(sim.Cycles(packets) * sim.Cycles(float64(perPacket)/loadFrac) * 2)
		raised, _, _, _ := m.IRQ().Stats()
		summarize("legacy", h, fmt.Sprintf("interrupts: %d", raised))
	}

	// --- polling thread ---
	{
		m := machine.New()
		n := nic(m, device.Signal{})
		h := metrics.NewHistogram()
		var times []sim.Cycles
		lastSeen := int64(0)
		m.Core(0).RegisterNative("poll.handle", func(c *core.Core, t *hwthread.Context) sim.Cycles {
			tail := c.ReadWord(n.TailAddr())
			var cost sim.Cycles
			for seq := lastSeen; seq < tail; seq++ {
				cost += perPacket
				if times[seq] > 0 {
					h.RecordCycles(c.Now() + cost - times[seq])
				}
			}
			lastSeen = tail
			c.WriteWord(0x300008, tail) // publish head for NIC flow control
			t.Regs.GPR[3] = tail
			return cost
		})
		poll := asm.MustAssemble("poll", `
main:
spin:
	ld r2, [r1+0]
	beq r2, r3, spin
	native poll.handle
	jmp spin
`)
		if err := m.Core(0).BindProgram(0, poll, "main"); err != nil {
			log.Fatal(err)
		}
		m.Core(0).Threads().Context(0).Regs.GPR[1] = n.TailAddr()
		m.Core(0).BootStart(0)
		times = arrivals(m, n)
		m.RunUntil(sim.Cycles(packets) * sim.Cycles(float64(perPacket)/loadFrac) * 2)
		summarize("polling", h, fmt.Sprintf("machine instrs: %d (spinning)", m.Retired()))
	}

	fmt.Println("\nThe mwait hardware thread delivers near-polling latency with")
	fmt.Println("interrupt-free operation and zero idle cost — §2's claim.")
	_ = irq.Vector(0)
}
