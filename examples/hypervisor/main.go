// Hypervisor: the §2 "Untrusted Hypervisors" chain, end to end. A guest VM
// performs I/O-causing VM-exits; the hypervisor is a completely unprivileged
// hardware thread woken by exit descriptors; I/O work is handed to the
// kernel's hardware thread, which resumes the guest when done:
//
//	guest ptid  --exit descriptor-->  hypervisor ptid (user mode!)
//	                                     --mailbox-->  kernel ptid
//	guest ptid  <----------------------- start ------------/
//
// Compared against the trusted in-kernel hypervisor (KVM shape) and the
// deprivileged legacy hypervisor (two context switches per exit).
//
// Run with: go run ./examples/hypervisor
package main

import (
	"fmt"
	"log"

	"nocs/internal/asm"
	"nocs/internal/hwthread"
	"nocs/internal/hypervisor"
	"nocs/internal/kernel"
	"nocs/internal/machine"
)

const exits = 100

func guestProgram() string {
	return fmt.Sprintf(`
main:
	movi r7, 0
loop:
	movi r1, 2      ; ExitIO: this vmcall needs kernel I/O help
	vmcall
	addi r7, r7, 1
	movi r8, %d
	blt r7, r8, loop
	halt
`, exits)
}

func main() {
	fmt.Printf("guest VM performing %d I/O VM-exits (2000-cycle I/O body)\n\n", exits)

	// Trusted legacy hypervisor (in-kernel, KVM shape).
	{
		m := machine.New()
		h := hypervisor.AttachLegacy(m.Core(0), hypervisor.Config{})
		prog := asm.MustAssemble("guest", guestProgram())
		m.Core(0).BindProgram(0, prog, "main")
		m.Core(0).BootStart(0)
		m.Run(0)
		total, io := h.Exits()
		fmt.Printf("%-40s %8.1f cycles/exit  (%d exits, %d I/O)\n",
			"legacy trusted (in-kernel):", float64(m.Now())/exits, total, io)
	}

	// Deprivileged legacy hypervisor.
	{
		m := machine.New()
		hypervisor.AttachLegacyUntrusted(m.Core(0), hypervisor.Config{})
		prog := asm.MustAssemble("guest", guestProgram())
		m.Core(0).BindProgram(0, prog, "main")
		m.Core(0).BootStart(0)
		m.Run(0)
		fmt.Printf("%-40s %8.1f cycles/exit\n",
			"legacy deprivileged (ring-3 process):", float64(m.Now())/exits)
	}

	// The paper's chain: unprivileged hypervisor ptid + kernel ptid.
	{
		m := machine.New()
		k := kernel.NewNocs(m.Core(0))
		prog := asm.MustAssemble("guest", guestProgram())
		if err := m.Core(0).BindProgram(0, prog, "main"); err != nil {
			log.Fatal(err)
		}
		h, err := hypervisor.ServeGuests(k, []hwthread.PTID{0}, 0x900000, 0xA00000,
			hypervisor.Config{})
		if err != nil {
			log.Fatal(err)
		}
		m.Run(0) // park the hypervisor and kernel threads
		start := m.Now()
		m.Core(0).BootStart(0)
		m.Run(0)
		if err := m.Fatal(); err != nil {
			log.Fatal(err)
		}
		g := m.Core(0).Threads().Context(0)
		fmt.Printf("%-40s %8.1f cycles/exit  (%d exits; hypervisor in USER mode)\n",
			"nocs hw-thread chain (unprivileged):", float64(m.Now()-start)/exits, h.Exits())
		if g.Regs.GPR[7] != exits {
			log.Fatalf("guest completed %d rounds", g.Regs.GPR[7])
		}
	}

	fmt.Println("\nThe unprivileged hardware-thread chain beats even the trusted")
	fmt.Println("legacy hypervisor: isolation no longer costs performance (§2).")
}
