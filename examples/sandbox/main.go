// Sandbox: §2's eBPF / container-proxy story. An application hands packets
// to an UNTRUSTED filter thread — the paper's "for eBPF, we could even relax
// some code restrictions if it ran in its own privilege domain. Quick
// hand-offs between hardware threads allow isolation without loss of
// performance."
//
// The filter runs in user mode with an empty TDT: it can touch nothing but
// its mailbox. Its exception descriptor points at a supervisor watchdog
// thread. One of the packets triggers a divide-by-zero inside the filter —
// the hardware disables the filter, writes a descriptor, and the watchdog
// wakes, logs the crash, delivers a "drop" verdict to the waiting app, and
// revives the filter for the next packet. The app never sees anything but
// a verdict.
//
// Run with: go run ./examples/sandbox
package main

import (
	"fmt"
	"log"

	"nocs/internal/asm"
	"nocs/internal/core"
	"nocs/internal/hwthread"
	"nocs/internal/machine"
	"nocs/internal/sim"
)

const (
	inbox     = 0x1000 // app -> filter: packet value
	outbox    = 0x1008 // filter -> app: verdict (1 accept, 0 drop, -1 crashed)
	filterEDP = 0x2000 // filter's exception descriptor
)

func main() {
	m := machine.New()
	c := m.Core(0)

	// The application: sends each packet, starts the filter, blocks on the
	// verdict. vtid 0 maps to the filter with start-only rights — the app
	// cannot stop it, read its registers, or touch anything else.
	app := asm.MustAssemble("app", `
main:
	movi r1, 0x1000   ; inbox
	movi r2, 0x1008   ; outbox
	movi r7, 0        ; packet index
loop:
	ld r3, [r14+0]    ; next packet value from the "wire" (r14 = packet array)
	addi r14, r14, 8
	movi r4, 0
	st [r2+0], r4     ; clear verdict
	monitor r2        ; arm BEFORE kicking the filter
	st [r1+0], r3     ; hand the packet over
	movi r5, 0        ; vtid 0 = filter
	start r5
wait:
	mwait
	ld r6, [r2+0]
	movi r4, 0
	bne r6, r4, got
	monitor r2
	jmp wait
got:
	native app.verdict
	addi r7, r7, 1
	movi r8, 6
	blt r7, r8, loop
	halt
`)

	// The untrusted filter: verdict = 1 if value/votes is even... and a
	// divide that blows up when the packet value is exactly 13.
	filter := asm.MustAssemble("filter", `
entry:
	movi r1, 0x1000
	ld r2, [r1+0]     ; packet value
	movi r3, 13
	sub r4, r2, r3    ; r4 = value - 13 (zero for the poison packet)
	div r5, r2, r4    ; CRASHES when value == 13
	movi r6, 2
	div r7, r2, r6
	mul r7, r7, r6
	sub r7, r2, r7    ; r7 = value % 2
	movi r8, 0x1008
	movi r9, 0
	beq r7, r9, even
	movi r9, 1        ; odd -> accept (verdict 1)
	st [r8+0], r9
	jmp done
even:
	movi r9, 2        ; even -> drop (verdict 2)
	st [r8+0], r9
done:
	movi r10, 0
	stop r10          ; park ourselves until the next packet (vtid 0 = self)
	jmp entry
`)

	// Wire the packets the app will read (one is the poison value 13).
	packets := []int64{7, 10, 13, 4, 9, 16}
	const wire = 0x3000
	for i, p := range packets {
		m.Mem().Write(wire+int64(i*8), p, 0)
	}

	// TDT for the app: vtid 0 -> filter ptid 1, start-only.
	appCtx := c.Threads().Context(0)
	appCtx.Regs.TDT = 0x8000
	appCtx.Regs.GPR[14] = wire
	hwthread.WriteTDTEntry(m.Mem(), 0x8000, 0, hwthread.Entry{PTID: 1, Perm: hwthread.PermStart})

	// TDT for the filter: vtid 0 -> itself, stop-only (it parks itself).
	filterCtx := c.Threads().Context(1)
	filterCtx.Regs.TDT = 0x8100
	filterCtx.Regs.EDP = filterEDP
	hwthread.WriteTDTEntry(m.Mem(), 0x8100, 0, hwthread.Entry{PTID: 1, Perm: hwthread.PermStop})

	if err := c.BindProgram(0, app, "main"); err != nil {
		log.Fatal(err)
	}
	if err := c.BindProgram(1, filter, "entry"); err != nil {
		log.Fatal(err)
	}

	// The supervisor watchdog: a native service watching the filter's
	// exception doorbell. On a crash it logs, answers "drop" for the app,
	// resets the filter's PC, and leaves it parked for the next start.
	crashes := 0
	c.RegisterNative("watchdog.svc", func(cc *core.Core, t *hwthread.Context) sim.Cycles {
		cc.ArmWatches(t, filterEDP+hwthread.DescCauseOff)
		d := hwthread.ReadDescriptor(cc.Mem(), filterEDP)
		var cost sim.Cycles
		if d.Cause != hwthread.ExcNone {
			crashes++
			fmt.Printf("  [watchdog] filter crashed: %v at pc=%d — dropping packet, reviving filter\n",
				d.Cause, d.PC)
			hwthread.ClearDescriptor(cc.Mem(), filterEDP)
			f := cc.Threads().Context(d.PTID)
			f.Regs.PC = 0 // reset to entry for the next packet
			cc.WriteWord(outbox, -1)
			cost = 200
		}
		if t.State == hwthread.Runnable && cost == 0 {
			cc.WaitArmed(t)
		}
		return cost
	})
	watchdog := asm.MustAssemble("watchdog", "svc:\n\tnative watchdog.svc\n\tjmp svc")
	if err := c.BindProgram(2, watchdog, "svc"); err != nil {
		log.Fatal(err)
	}
	c.Threads().Context(2).Regs.Mode = 1 // supervisor

	verdictNames := map[int64]string{1: "ACCEPT", 2: "DROP", -1: "DROP (filter crashed)"}
	idx := 0
	c.RegisterNative("app.verdict", func(cc *core.Core, t *hwthread.Context) sim.Cycles {
		v := t.Regs.GPR[6]
		fmt.Printf("packet %d (value %2d) -> %s\n", idx, packets[idx], verdictNames[v])
		idx++
		return 1
	})

	fmt.Println("untrusted filter thread: user mode, empty TDT, watchdog on its EDP")
	fmt.Println()
	c.BootStart(2) // watchdog parks first
	m.Run(0)
	c.BootStart(0)
	m.Run(0)
	if err := m.Fatal(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprocessed %d packets, filter crashed %d time(s), app and kernel unharmed\n",
		idx, crashes)
	fmt.Printf("total time: %v\n", m.Now())
}
