#!/usr/bin/env bash
# ci.sh — the repository's correctness gate. Run before every commit (and
# from scripts/bench.sh, which adds the timing/benchmark layer on top):
#
#   1. gofmt           — no unformatted files
#   2. go vet          — static checks
#   3. go build        — every package, including examples and cmds
#   4. go test -race   — the full suite under the race detector
#   5. fuzz smoke      — 10s of coverage-guided fuzzing per fuzz target,
#                        on top of the checked-in corpora
#   6. diff sweep      — 200 fresh seeds through the engine-vs-reference
#                        differential harness (DESIGN.md §9)
#   7. faulted sweep   — 100 seeds with injected fault schedules, plus the
#                        planted fault-swallowing mutation that the sweep
#                        must catch (DESIGN.md §10)
#   8. fault package   — go vet + race-enabled unit tests for
#                        internal/faultinject
#   9. golden diff     — `nocsim -all` must be byte-identical to the
#                        committed results_full.txt (skip with SKIP_GOLDEN=1
#                        when the caller performs its own golden run)
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "FAIL: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke (10s per target) =="
go test -run '^$' -fuzz '^FuzzAsmParse$' -fuzztime 10s ./internal/asm
go test -run '^$' -fuzz '^FuzzTraceRoundTrip$' -fuzztime 10s ./internal/trace

echo "== differential sweep (200 seeds) =="
NOCS_DIFF_N=200 go test -count=1 -run '^TestDifferentialSweep$' ./internal/refmodel/diff

echo "== faulted differential sweep (100 seeds) + planted mutation =="
NOCS_DIFF_N=100 go test -count=1 \
    -run '^(TestFaultedDifferentialSweep|TestFaultMutationIsCaught)$' \
    ./internal/refmodel/diff

echo "== fault-injection package (vet + race) =="
go vet ./internal/faultinject
go test -race -count=1 ./internal/faultinject

if [ "${SKIP_GOLDEN:-0}" != "1" ]; then
    echo "== determinism: nocsim -all vs results_full.txt =="
    TMP=$(mktemp -d)
    trap 'rm -rf "$TMP"' EXIT
    go build -o "$TMP/nocsim" ./cmd/nocsim
    "$TMP/nocsim" -all > "$TMP/all.txt"
    if ! diff -u results_full.txt "$TMP/all.txt" > "$TMP/diff.txt"; then
        echo "FAIL: nocsim -all output differs from committed golden:" >&2
        head -40 "$TMP/diff.txt" >&2
        exit 1
    fi
    echo "   identical"
fi

echo "ci: all green"
