#!/usr/bin/env bash
# ci.sh — the repository's correctness gate. Run before every commit (and
# from scripts/bench.sh, which adds the timing/benchmark layer on top):
#
#   1. gofmt           — no unformatted files
#   2. go vet          — static checks
#   3. go build        — every package, including examples and cmds
#   4. go test -race   — the full suite under the race detector
#   5. fuzz smoke      — 10s of coverage-guided fuzzing per fuzz target,
#                        on top of the checked-in corpora
#   6. diff sweep      — 200 fresh seeds through the engine-vs-reference
#                        differential harness (DESIGN.md §9), each seed also
#                        checkpointed/restored mid-run (restore-equivalence)
#   7. faulted sweep   — 100 seeds with injected fault schedules, their
#                        restore-equivalence variant, the planted
#                        fault-swallowing mutation that the sweep must catch
#                        (DESIGN.md §10), and the diff-bisection harness
#                        localizing a planted mutation to its exact first
#                        divergent cycle (DESIGN.md §13)
#   8. fault package   — go vet + race-enabled unit tests for
#                        internal/faultinject
#   9. allocation gate — CoreInstructionRate + F7_TailLatency +
#                        UncontendedLock allocs/op must stay within 10% of
#                        scripts/alloc_baseline.txt (the zero-alloc hot
#                        paths must not silently regrow heap traffic)
#  10. sharded golden  — a small `nocsim -scale -quick` run; RunScale fails
#                        internally unless the sharded scheduler's output is
#                        byte-identical to the serial oracle, so scheduler
#                        regressions fail fast here
#  11. lock sweep      — a CI-sized `nocsim -locks -quick` contention run
#                        (RunLocks fails internally on any exclusion
#                        violation, lost wakeup, or shard-determinism
#                        break), plus a 60-seed lock-ordering differential
#                        sweep with the planted LIFO-handoff mutation that
#                        the sweep must catch (DESIGN.md §14)
#  12. snapshot golden — a quick checkpointed endurance run (`nocsim
#                        -endurance`): resuming from the last emitted
#                        checkpoint must reproduce the straight-through
#                        run's summary and hash exactly
#  13. serving smoke   — a CI-sized `nocsim -serve -quick` sweep, including
#                        overload cells (load 1.3): RunServe fails
#                        internally on any serial-vs-sharded byte
#                        difference, conservation break, or if no overload
#                        cell ever refused a request (DESIGN.md §15)
#  14. golden diff     — `nocsim -all` must be byte-identical to the
#                        committed results_full.txt (skip with SKIP_GOLDEN=1
#                        when the caller performs its own golden run)
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "FAIL: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke (10s per target) =="
go test -run '^$' -fuzz '^FuzzAsmParse$' -fuzztime 10s ./internal/asm
go test -run '^$' -fuzz '^FuzzTraceRoundTrip$' -fuzztime 10s ./internal/trace
go test -run '^$' -fuzz '^FuzzSnapshotRoundTrip$' -fuzztime 10s ./internal/snapshot

echo "== differential sweep (200 seeds) + restore equivalence =="
NOCS_DIFF_N=200 go test -count=1 \
    -run '^(TestDifferentialSweep|TestRestoreEquivalenceSweep)$' \
    ./internal/refmodel/diff

echo "== faulted differential sweep (100 seeds) + planted mutation + bisection =="
NOCS_DIFF_N=100 go test -count=1 \
    -run '^(TestFaultedDifferentialSweep|TestFaultMutationIsCaught|TestFaultedRestoreEquivalenceSweep|TestBisectLocalizesPlantedMutation)$' \
    ./internal/refmodel/diff

echo "== fault-injection package (vet + race) =="
go vet ./internal/faultinject
go test -race -count=1 ./internal/faultinject

echo "== allocation gate (allocs/op within 10% of scripts/alloc_baseline.txt) =="
go test -run '^$' -bench '^(BenchmarkCoreInstructionRate|BenchmarkF7_TailLatency|BenchmarkUncontendedLock)$' \
    -benchmem -benchtime 1x . > "$TMP/allocgate.txt"
awk '
    NR==FNR { if ($0 !~ /^#/ && NF == 2) base[$1] = $2; next }
    /^Benchmark/ && /allocs\/op/ {
        name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
        a = ""
        for (i = 2; i <= NF; i++) if ($i == "allocs/op") a = $(i-1)
        if (!(name in base)) { printf "FAIL: no baseline for %s in scripts/alloc_baseline.txt\n", name; bad = 1; next }
        lim = base[name] * 1.10
        printf "   %-22s %8d allocs/op (baseline %d, limit %.0f)\n", name, a, base[name], lim
        if (a + 0 > lim) { printf "FAIL: %s allocs/op regressed: %d > %.0f\n", name, a, lim; bad = 1 }
        seen[name] = 1
    }
    END {
        for (n in base) if (!(n in seen)) { printf "FAIL: baseline benchmark %s did not run\n", n; bad = 1 }
        exit bad
    }
' scripts/alloc_baseline.txt "$TMP/allocgate.txt"

echo "== sharded golden: nocsim -scale -quick (serial vs sharded byte-identity) =="
go build -o "$TMP/nocsim" ./cmd/nocsim
"$TMP/nocsim" -scale -quick -shards 4 -workers 4 | grep '^S1 stats:'

echo "== lock sweep smoke: nocsim -locks -quick + lock-ordering differential sweep =="
"$TMP/nocsim" -locks -quick | grep '^L1 shards:' | sed 's/^/   /'
NOCS_DIFF_N=60 go test -count=1 \
    -run '^(TestLockDifferentialSweep|TestHandoffMutationIsCaught)$' \
    ./internal/refmodel/diff

echo "== snapshot golden: nocsim -endurance checkpoint/resume hash identity =="
"$TMP/nocsim" -endurance -quick -checkpoint-every 30000 \
    -checkpoint "$TMP/e1.ckpt" > "$TMP/e1.txt" 2>/dev/null
"$TMP/nocsim" -endurance -quick -resume "$TMP/e1.ckpt" > "$TMP/e1_resume.txt" 2>/dev/null
grep '^E1 stats:' "$TMP/e1.txt" "$TMP/e1_resume.txt" | sed 's/^/   /'
if ! diff -u <(grep -v '^E1 stats:' "$TMP/e1.txt") \
             <(grep -v '^E1 stats:' "$TMP/e1_resume.txt"); then
    echo "FAIL: resumed endurance summary differs from straight-through run" >&2
    exit 1
fi
h0=$(grep -o 'hash=[0-9a-f]*' "$TMP/e1.txt")
h1=$(grep -o 'hash=[0-9a-f]*' "$TMP/e1_resume.txt")
if [ -z "$h0" ] || [ "$h0" != "$h1" ]; then
    echo "FAIL: resume hash ${h1:-<none>} != straight-through hash ${h0:-<none>}" >&2
    exit 1
fi

echo "== serving smoke: nocsim -serve -quick (sweep incl. overload cells) =="
"$TMP/nocsim" -serve -quick > "$TMP/serve.txt"
grep '^SV1 stats:' "$TMP/serve.txt" | sed 's/^/   /'
if ! grep '^SV1 stats:' "$TMP/serve.txt" | grep -q 'load=1\.30'; then
    echo "FAIL: serving smoke ran no overload cell" >&2
    exit 1
fi

if [ "${SKIP_GOLDEN:-0}" != "1" ]; then
    echo "== determinism: nocsim -all vs results_full.txt =="
    "$TMP/nocsim" -all > "$TMP/all.txt"
    if ! diff -u results_full.txt "$TMP/all.txt" > "$TMP/diff.txt"; then
        echo "FAIL: nocsim -all output differs from committed golden:" >&2
        head -40 "$TMP/diff.txt" >&2
        exit 1
    fi
    echo "   identical"
fi

echo "ci: all green"
