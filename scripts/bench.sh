#!/usr/bin/env bash
# bench.sh — regression harness for the simulator's hot paths.
#
# 1. Proves determinism: `nocsim -all` (serial AND -parallel 8) must be
#    byte-identical to the committed golden results_full.txt.
# 2. Times `nocsim -all` wall clock.
# 3. Runs the S1 scaling experiment (64 simulated cores, sharded scheduler
#    across the host's CPUs) and records parallel_speedup: sharded wall
#    clock vs the serial oracle at equal seeds and byte-identical output.
#    The speedup is bounded by the host's real CPU count (GOMAXPROCS).
# 4. Runs the L1 lock-contention experiment (every internal/sync
#    primitive×flavor cell swept over ptids, hold length, and SMT slots,
#    plus the shard-determinism sweep) and records every row.
# 5. Runs the SV1 serving sweep (multi-tier serving cells across load ×
#    arrival × flavor, every cell byte-identical between the serial oracle
#    and the sharded scheduler, overload cells shedding through the
#    admission window) and records every cell. SERVE_QUICK=1 substitutes
#    the CI-sized grid when the full 10^5-connection sweep is too slow.
# 6. Runs the repository testing.B benchmarks with -benchmem.
# 7. Emits BENCH_6.json: per-experiment ns/op, B/op, allocs/op (plus
#    sim-instrs/op and sim-instrs/sec where a benchmark reports them), the
#    wall times, the headline instructions_per_sec figure (sustained
#    simulated-instruction rate from CoreInstructionRate), the
#    parallel_speedup block, the snapshot block (checkpoint
#    serialize/restore throughput in MB/s and ns per checkpoint, from
#    BenchmarkSnapshotEncode/BenchmarkSnapshotRestore), and the
#    lock_contention block (acquire p50/p99, handoff, starvation, and
#    fairness per cell), and the serving block (per-cell tail latency,
#    goodput, and refusals from SV1), so the next hot-path PR starts from
#    numbers, not guesses.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=1x (default) controls -benchtime; set e.g. BENCHTIME=2s for
#   steadier numbers on a quiet machine. SCALE_WORKERS (default: all CPUs)
#   sets the sharded run's worker count.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_6.json}
BENCHTIME=${BENCHTIME:-1x}
GOLDEN=results_full.txt
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Correctness gate first (gofmt, vet, build, test -race); the golden diff is
# skipped because this script runs it itself, timed, below.
SKIP_GOLDEN=1 scripts/ci.sh

echo "== build =="
go build -o "$TMP/nocsim" ./cmd/nocsim

echo "== determinism: nocsim -all vs $GOLDEN =="
t0=$(date +%s%N)
"$TMP/nocsim" -all > "$TMP/all.txt"
t1=$(date +%s%N)
wall_ms=$(( (t1 - t0) / 1000000 ))
if ! diff -u "$GOLDEN" "$TMP/all.txt" > "$TMP/diff.txt"; then
    echo "FAIL: nocsim -all output differs from committed golden $GOLDEN:" >&2
    head -40 "$TMP/diff.txt" >&2
    exit 1
fi
echo "   serial: identical, ${wall_ms} ms"

t0=$(date +%s%N)
"$TMP/nocsim" -all -parallel 8 > "$TMP/all_par.txt"
t1=$(date +%s%N)
wall_par_ms=$(( (t1 - t0) / 1000000 ))
if ! cmp -s "$GOLDEN" "$TMP/all_par.txt"; then
    echo "FAIL: nocsim -all -parallel 8 output differs from golden (determinism broken)" >&2
    exit 1
fi
echo "   -parallel 8: identical, ${wall_par_ms} ms"

echo "== S1 scaling: sharded scheduler vs serial oracle =="
SCALE_ARGS=(-scale)
if [ -n "${SCALE_WORKERS:-}" ]; then
    SCALE_ARGS+=(-workers "$SCALE_WORKERS")
fi
"$TMP/nocsim" "${SCALE_ARGS[@]}" | tee "$TMP/scale.txt"
scale_stats=$(grep '^S1 stats:' "$TMP/scale.txt")
scale_field() { echo "$scale_stats" | tr ' ' '\n' | awk -F= -v k="$1" '$1==k {print $2}'; }
speedup=$(scale_field speedup)
scale_workers=$(scale_field workers)
scale_shards=$(scale_field shards)
scale_cores=$(scale_field cores)
scale_serial_ms=$(scale_field serial_ms)
scale_parallel_ms=$(scale_field parallel_ms)
scale_ips=$(scale_field instrs_per_sec)

echo "== L1 lock contention: nocsim -locks =="
"$TMP/nocsim" -locks > "$TMP/locks.txt"
grep -E '^L1 (stats|shards):' "$TMP/locks.txt" | sed 's/^/   /' | tail -6
# Render the L1 rows and shard-sweep line as the lock_contention JSON block.
awk '
/^L1 stats:/ {
    row = ""
    for (i = 3; i <= NF; i++) {
        split($i, kv, "=")
        v = kv[2]
        if (kv[1] == "cell" || kv[1] == "hold") v = "\"" v "\""
        row = row (row == "" ? "" : ", ") "\"" kv[1] "\": " v
    }
    rows[nr++] = "      {" row "}"
}
/^L1 shards:/ {
    for (i = 3; i <= NF; i++) {
        split($i, kv, "=")
        if (kv[1] == "workers") sw = kv[2]
        if (kv[1] == "hash") sh = kv[2]
        if (kv[1] == "speedup") sp = kv[2]
    }
}
END {
    printf "  \"lock_contention\": {\n"
    printf "    \"shard_sweep\": {\"shards\": [1, 2, 4], \"workers\": %s, \"output\": \"byte-identical\", \"hash\": \"%s\", \"best_speedup\": %s},\n", \
        sw == "" ? "null" : sw, sh, sp == "" ? "null" : sp
    printf "    \"rows\": [\n"
    for (i = 0; i < nr; i++) printf "%s%s\n", rows[i], i < nr-1 ? "," : ""
    printf "    ]\n  },\n"
}' "$TMP/locks.txt" > "$TMP/locks.json"

echo "== SV1 serving sweep: nocsim -serve =="
SERVE_ARGS=(-serve)
if [ "${SERVE_QUICK:-0}" = "1" ]; then
    SERVE_ARGS+=(-quick)
fi
"$TMP/nocsim" "${SERVE_ARGS[@]}" > "$TMP/serve.txt"
grep '^SV1 stats:' "$TMP/serve.txt" | sed 's/^/   /' | tail -6
# Render the SV1 cells as the serving JSON block.
awk '
/^SV1 stats:/ {
    row = ""
    for (i = 3; i <= NF; i++) {
        split($i, kv, "=")
        v = kv[2]
        if (kv[1] == "flavor" || kv[1] == "arrival" || kv[1] == "hash") v = "\"" v "\""
        row = row (row == "" ? "" : ", ") "\"" kv[1] "\": " v
    }
    rows[nr++] = "      {" row "}"
}
END {
    printf "  \"serving\": {\n"
    printf "    \"determinism\": \"every cell byte-identical, serial oracle vs sharded\",\n"
    printf "    \"cells\": [\n"
    for (i = 0; i < nr; i++) printf "%s%s\n", rows[i], i < nr-1 ? "," : ""
    printf "    ]\n  },\n"
}' "$TMP/serve.txt" > "$TMP/serve.json"

echo "== benchmarks (-benchmem -benchtime $BENCHTIME) =="
go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" . | tee "$TMP/bench.txt"

echo "== writing $OUT =="
awk -v wall_ms="$wall_ms" -v wall_par_ms="$wall_par_ms" \
    -v speedup="$speedup" -v scale_workers="$scale_workers" \
    -v scale_shards="$scale_shards" -v scale_cores="$scale_cores" \
    -v scale_serial_ms="$scale_serial_ms" -v scale_parallel_ms="$scale_parallel_ms" \
    -v scale_ips="$scale_ips" -v lockjson="$TMP/locks.json" \
    -v servejson="$TMP/serve.json" '
BEGIN { n = 0; ips = "" }
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""; instrs = ""; rate = ""; mbs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")          ns = $(i-1)
        if ($i == "B/op")           bytes = $(i-1)
        if ($i == "allocs/op")      allocs = $(i-1)
        if ($i == "sim-instrs/op")  instrs = $(i-1)
        if ($i == "sim-instrs/sec") rate = $(i-1)
        if ($i == "MB/s")           mbs = $(i-1)
    }
    names[n] = name; nss[n] = ns; bs[n] = bytes; as[n] = allocs
    sis[n] = instrs; srs[n] = rate; n++
    if (name == "CoreInstructionRate" && rate != "") ips = rate
    if (name == "SnapshotEncode")  { snap_enc_mbs = mbs; snap_enc_ns = ns }
    if (name == "SnapshotRestore") { snap_res_mbs = mbs; snap_res_ns = ns }
}
END {
    printf "{\n"
    printf "  \"nocsim_all_wall_ms\": %d,\n", wall_ms
    printf "  \"nocsim_all_parallel8_wall_ms\": %d,\n", wall_par_ms
    printf "  \"golden_diff\": \"identical\",\n"
    printf "  \"instructions_per_sec\": %s,\n", ips == "" ? "null" : ips
    printf "  \"parallel_speedup\": %s,\n", speedup == "" ? "null" : speedup
    printf "  \"scale\": {\"cores\": %s, \"shards\": %s, \"workers\": %s, \"serial_wall_ms\": %s, \"parallel_wall_ms\": %s, \"sim_instrs_per_sec\": %s, \"output\": \"byte-identical\"},\n", \
        scale_cores == "" ? "null" : scale_cores, \
        scale_shards == "" ? "null" : scale_shards, \
        scale_workers == "" ? "null" : scale_workers, \
        scale_serial_ms == "" ? "null" : scale_serial_ms, \
        scale_parallel_ms == "" ? "null" : scale_parallel_ms, \
        scale_ips == "" ? "null" : scale_ips
    printf "  \"snapshot\": {\"encode_mb_per_sec\": %s, \"encode_ns_per_checkpoint\": %s, \"restore_mb_per_sec\": %s, \"restore_ns_per_checkpoint\": %s},\n", \
        snap_enc_mbs == "" ? "null" : snap_enc_mbs, \
        snap_enc_ns == "" ? "null" : snap_enc_ns, \
        snap_res_mbs == "" ? "null" : snap_res_mbs, \
        snap_res_ns == "" ? "null" : snap_res_ns
    while ((getline lockline < lockjson) > 0) print lockline
    while ((getline serveline < servejson) > 0) print serveline
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
            names[i], nss[i], bs[i] == "" ? "null" : bs[i], as[i] == "" ? "null" : as[i]
        if (sis[i] != "") printf ", \"sim_instrs_per_op\": %s", sis[i]
        if (srs[i] != "") printf ", \"sim_instrs_per_sec\": %s", srs[i]
        printf "}%s\n", i < n-1 ? "," : ""
    }
    printf "  ]\n}\n"
}' "$TMP/bench.txt" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks, nocsim -all ${wall_ms} ms)"
