// Package nocs_test holds the repository-level benchmark harness: one
// testing.B per table/figure in DESIGN.md §3. Each benchmark drives the same
// experiment code as `nocsim -exp <ID>`, so `go test -bench=.` regenerates
// every reported number.
//
// Benchmarks run the Quick configuration per iteration; the reported
// ns/op therefore measures the *simulator*, while the experiment's own
// tables (printed once per benchmark with -v via b.Log) report the
// *simulated* cycles that EXPERIMENTS.md quotes.
package nocs_test

import (
	"bytes"
	"testing"

	"nocs/internal/bench"
	"nocs/internal/machine"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := bench.RunConfig{Seed: bench.DefaultConfig().Seed, Quick: true}
	var last string
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res.String()
	}
	if testing.Verbose() {
		b.Log("\n" + last)
	}
}

func BenchmarkT1_TDTPermissionCheck(b *testing.B)   { runExperiment(b, "T1") }
func BenchmarkT2_StateCapacity(b *testing.B)        { runExperiment(b, "T2") }
func BenchmarkF1_EventWakeup(b *testing.B)          { runExperiment(b, "F1") }
func BenchmarkF2_IOPathSweep(b *testing.B)          { runExperiment(b, "F2") }
func BenchmarkF3_SyscallMechanisms(b *testing.B)    { runExperiment(b, "F3") }
func BenchmarkF4_VMExit(b *testing.B)               { runExperiment(b, "F4") }
func BenchmarkF5_FPKernel(b *testing.B)             { runExperiment(b, "F5") }
func BenchmarkF6_MicrokernelIPC(b *testing.B)       { runExperiment(b, "F6") }
func BenchmarkF7_TailLatency(b *testing.B)          { runExperiment(b, "F7") }
func BenchmarkF8_StartLatencyByTier(b *testing.B)   { runExperiment(b, "F8") }
func BenchmarkF9_PriorityScheduling(b *testing.B)   { runExperiment(b, "F9") }
func BenchmarkF10_DistributedFanout(b *testing.B)   { runExperiment(b, "F10") }
func BenchmarkF11_UntrustedHypervisor(b *testing.B) { runExperiment(b, "F11") }
func BenchmarkF12_StoragePath(b *testing.B)         { runExperiment(b, "F12") }
func BenchmarkF13_CrossCoreWakeup(b *testing.B)     { runExperiment(b, "F13") }
func BenchmarkF14_ContainerProxy(b *testing.B)      { runExperiment(b, "F14") }
func BenchmarkF15_SchedulerReaction(b *testing.B)   { runExperiment(b, "F15") }
func BenchmarkF16_NetstackEcho(b *testing.B)        { runExperiment(b, "F16") }
func BenchmarkA1_SlotSweep(b *testing.B)            { runExperiment(b, "A1") }
func BenchmarkA2_NoDMAMonitor(b *testing.B)         { runExperiment(b, "A2") }
func BenchmarkA3_PrefetchAblation(b *testing.B)     { runExperiment(b, "A3") }
func BenchmarkA4_StatePinning(b *testing.B)         { runExperiment(b, "A4") }

// BenchmarkCoreInstructionRate measures raw simulator speed: simulated
// instructions per host second on a tight ALU loop. This is the number that
// bounds how big an experiment the harness can afford.
func BenchmarkCoreInstructionRate(b *testing.B) {
	benchmarkInstructionRate(b)
}

// snapshotBenchMachine builds a warmed-up sharded endurance machine plus one
// serialized checkpoint of it, the fixture both snapshot benchmarks share.
func snapshotBenchMachine(b *testing.B) (*machine.Machine, []byte) {
	b.Helper()
	cfg := bench.RunConfig{Seed: 1}
	ec := bench.EnduranceConfig{Cores: 4, Shards: 4, Workers: 1, Horizon: 60_000}
	m, err := bench.BuildEndurance(cfg, ec)
	if err != nil {
		b.Fatal(err)
	}
	m.RunUntil(30_000)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		b.Fatal(err)
	}
	return m, buf.Bytes()
}

// BenchmarkSnapshotEncode measures checkpoint serialization throughput on a
// warmed-up sharded machine: MB/s is the reported bytes-per-second, ns/op is
// the cost of one checkpoint (scripts/bench.sh records both in BENCH_4.json).
func BenchmarkSnapshotEncode(b *testing.B) {
	m, ckpt := snapshotBenchMachine(b)
	var buf bytes.Buffer
	b.SetBytes(int64(len(ckpt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := m.Snapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures the inverse path: decoding a checkpoint
// and rebuilding full machine state into an existing same-topology machine.
func BenchmarkSnapshotRestore(b *testing.B) {
	_, ckpt := snapshotBenchMachine(b)
	tgt, err := bench.BuildEndurance(bench.RunConfig{Seed: 1},
		bench.EnduranceConfig{Cores: 4, Shards: 4, Workers: 1, Horizon: 60_000})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(ckpt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tgt.Restore(bytes.NewReader(ckpt)); err != nil {
			b.Fatal(err)
		}
	}
}
