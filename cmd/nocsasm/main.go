// Command nocsasm assembles, disassembles, and optionally executes nocs
// assembly files on a default single-core machine.
//
// Usage:
//
//	nocsasm prog.asm                 # assemble + print disassembly
//	nocsasm -run prog.asm            # also execute ptid 0 from "main"
//	nocsasm -run -entry boot -trace 40 prog.asm
//	nocsasm -diff repro.asm          # replay a differential-test case
//	echo 'main: movi r1, 42
//	      halt' | nocsasm -run -
//
// -diff replays a file dumped by the differential harness (see README
// "Reproducing differential failures"): the `; nocs-*` directive comments
// carry the full machine setup, and the program runs through both the
// optimized engine and the reference interpreter. Exit status 1 means the
// two implementations still disagree.
//
// When running, the program is bound to ptid 0; r14 is left zero; execution
// ends when the event queue drains or -max-events fire. Final register
// state, retired-instruction count, and simulated time are printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nocs/internal/asm"
	"nocs/internal/core"
	"nocs/internal/isa"
	"nocs/internal/machine"
	"nocs/internal/progen"
	"nocs/internal/refmodel/diff"
)

func main() {
	var (
		run       = flag.Bool("run", false, "execute the program on ptid 0")
		entry     = flag.String("entry", "main", "entry label")
		trace     = flag.Int("trace", 0, "print the first N executed instructions")
		maxEvents = flag.Int("max-events", 1_000_000, "abort after this many simulation events")
		super     = flag.Bool("supervisor", false, "start the thread in supervisor mode")
		diffRun   = flag.Bool("diff", false, "replay a differential repro (nocs-* directives) through engine and reference model")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	path := flag.Arg(0)
	var src []byte
	var err error
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		fatal(err)
	}

	if *diffRun {
		runDiff(path, string(src))
		return
	}

	prog, err := asm.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("; %s: %d instructions, %d labels\n", path, prog.Len(), len(prog.Labels))
	fmt.Print(prog.Disassemble())

	if !*run {
		return
	}

	m := machine.New()
	c := m.Core(0)
	var tb core.TraceBuffer
	if *trace > 0 {
		tb.Max = *trace
		c.OnExec = tb.Hook()
	}
	if err := c.BindProgram(0, prog, *entry); err != nil {
		fatal(err)
	}
	if *super {
		c.Threads().Context(0).Regs.Mode = 1
	}
	if err := c.BootStart(0); err != nil {
		fatal(err)
	}
	n := m.Run(*maxEvents)
	fmt.Printf("\n; executed %d events, t=%v, retired=%d\n", n, m.Now(), c.Retired())
	if err := m.Fatal(); err != nil {
		fmt.Printf("; MACHINE FATAL: %v\n", err)
	}
	ctx := c.Threads().Context(0)
	fmt.Printf("; ptid 0: state=%v pc=%d\n", ctx.State, ctx.Regs.PC)
	for i := 0; i < isa.NumGPR; i++ {
		if v := ctx.Regs.GPR[i]; v != 0 {
			fmt.Printf(";   r%-2d = %d (%#x)\n", i, v, v)
		}
	}
	for i := 0; i < isa.NumFPR; i++ {
		if v := ctx.Regs.GetF(isa.F0 + isa.Reg(i)); v != 0 {
			fmt.Printf(";   f%-2d = %g\n", i, v)
		}
	}
	if *trace > 0 {
		fmt.Printf("\n; trace (first %d):\n%s", *trace, tb.String())
	}
}

// runDiff replays a differential test case dumped by internal/refmodel/diff.
func runDiff(path, src string) {
	spec, err := progen.ParseSpec(path, src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("; %s: seed=%d threads=%d slots=%d deadline=%d\n",
		path, spec.Seed, spec.Threads, spec.Slots, spec.Deadline)
	res, err := diff.Run(spec, diff.Options{})
	if err != nil {
		fatal(err)
	}
	if res.OK() {
		fmt.Println("; engine and reference model agree")
		return
	}
	fmt.Printf("; DIVERGENCE: %d fields differ\n", len(res.Divergences))
	for _, d := range res.Divergences {
		fmt.Printf(";   %s\n", d)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsasm:", err)
	os.Exit(1)
}
