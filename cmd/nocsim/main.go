// Command nocsim runs the reproduction experiments for "A Case Against
// (Most) Context Switches" (HotOS '21) and prints their paper-style tables.
//
// Usage:
//
//	nocsim -list
//	nocsim -exp F1            # one experiment
//	nocsim -exp F1,F7,T2      # several
//	nocsim -all               # the full suite (EXPERIMENTS.md input)
//	nocsim -all -quick        # reduced sample counts
//	nocsim -seed 7 -exp F7    # alternate workload seed
//	nocsim -all -parallel 8   # concurrent experiments, identical output
//	nocsim -all -cpuprofile cpu.pb.gz   # profile the simulator itself
//	nocsim -exp F1 -trace f1.json       # cycle trace, open at ui.perfetto.dev
//	nocsim -scale             # S1: one 64-core machine across real CPUs
//	nocsim -scale -cores 256 -workers 8 # bigger machine, explicit workers
//	nocsim -locks             # L1: lock contention, nocs vs legacy parking
//	nocsim -locks -quick      # CI-sized contention sweep
//	nocsim -serve             # SV1: datacenter serving cells, load × arrival × flavor
//	nocsim -serve -quick      # CI-sized serving grid incl. overload cells
//	nocsim -endurance -checkpoint-every 100000 -checkpoint run.ckpt
//	                          # E1 endurance run, periodic machine checkpoints
//	nocsim -endurance -resume run.ckpt  # warm-start from the last checkpoint
//
// Two parallelism axes, one rule (DESIGN.md §12): `-parallel` runs
// independent experiments/sweep points concurrently (coarse, zero
// cross-talk); `-workers`/`-shards`/`-lookahead` parallelize INSIDE one
// machine via the sharded scheduler (S1 and any sharded machine). Both are
// clamped to GOMAXPROCS, and neither changes a byte of output — worker
// count is a wall-clock knob only.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"nocs/internal/bench"
	"nocs/internal/faultinject"
	"nocs/internal/sim"
	"nocs/internal/snapshot"
	"nocs/internal/trace"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		exp        = flag.String("exp", "", "comma-separated experiment IDs (e.g. F1,T2)")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "reduced sample counts")
		seed       = flag.Uint64("seed", bench.DefaultConfig().Seed, "workload RNG seed")
		format     = flag.String("format", "table", "output format: table or csv")
		parallel   = flag.Int("parallel", 1, "run up to N experiments (and sweep points within them) concurrently, clamped to the usable CPU count; every run uses isolated engines and results merge in registry order, so output is identical at any setting")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the simulator to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after all runs) to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file (open at ui.perfetto.dev); forces -parallel 1")
		faults     = flag.String("faults", "", `fault-injection plan for fault-aware experiments (F2, F16): "default" arms the standard seeded plan, "" runs fault-free`)
		scale      = flag.Bool("scale", false, "run S1, the sharded-scheduler scaling experiment: one many-core machine executed serially, then across -workers real CPUs, with a byte-identity check between the two")
		locks      = flag.Bool("locks", false, "run L1, the lock-contention experiment: every internal/sync primitive×flavor cell swept across ptid counts, hold lengths, and SMT slots, plus a shard-determinism check")
		serveFlag  = flag.Bool("serve", false, "run SV1, the datacenter serving sweep: multi-tier serving cells (LB → app pool → storage) across load × arrival × flavor, each cell byte-identical between the serial oracle and the sharded scheduler")
		endurance  = flag.Bool("endurance", false, "run E1, the checkpointed endurance workload: a snapshot-complete token-ring machine whose full state can be serialized mid-run (-checkpoint-every) and warm-started later (-resume)")
		horizon    = flag.Int64("horizon", 0, "simulated cycles for -endurance (default 400000, or 100000 with -quick)")
		ckptEvery  = flag.Int64("checkpoint-every", 0, "serialize a machine checkpoint every N simulated cycles during -endurance (0 disables)")
		ckptFile   = flag.String("checkpoint", "nocs.ckpt", "checkpoint file -checkpoint-every overwrites (atomically) and -resume reads")
		resume     = flag.String("resume", "", "warm-start -endurance from this checkpoint file instead of cold boot; the run continues to -horizon and must reproduce the straight-through hash")
		cores      = flag.Int("cores", 0, "simulated core count for -scale (default 64, or 16 with -quick)")
		workers    = flag.Int("workers", 0, "worker goroutines driving one sharded machine (-scale), clamped to GOMAXPROCS; 0 means GOMAXPROCS")
		shards     = flag.Int("shards", 0, "event-queue shards for -scale (default one per simulated core)")
		lookahead  = flag.Int64("lookahead", 0, "cross-shard synchronization horizon in cycles for -scale (default 400, the IPI cost)")
	)
	flag.Parse()

	// More workers than usable CPUs is pure overhead for this CPU-bound
	// simulator: the goroutines time-slice the same cores while the extra
	// in-flight experiments inflate the live heap and GC pressure. On a
	// single-CPU host, -parallel 8 measurably LOSES to serial (BENCH_1.json
	// recorded 2942 ms vs 2764 ms), so clamp rather than oversubscribe —
	// output is identical at any setting, only the wall time changes.
	requestedParallel := *parallel
	if max := runtime.GOMAXPROCS(0); *parallel > max {
		*parallel = max
	}

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Printf("%-4s %s\n", id, e.Title)
		}
		return
	}

	if *endurance {
		ec := bench.DefaultEnduranceConfig(*quick)
		if *cores > 0 {
			ec.Cores = *cores
		}
		if *shards > 0 {
			ec.Shards = *shards
		}
		if *workers > 0 {
			ec.Workers = *workers
		}
		if *horizon > 0 {
			ec.Horizon = sim.Cycles(*horizon)
		}
		if max := runtime.GOMAXPROCS(0); ec.Workers > max {
			ec.Workers = max
		}
		cfg := bench.RunConfig{Seed: *seed, Quick: *quick}
		if *resume != "" {
			data, err := os.ReadFile(*resume)
			if err != nil {
				fmt.Fprintf(os.Stderr, "resume: %v\n", err)
				os.Exit(1)
			}
			snap, err := snapshot.Decode(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "resume: %s: %v\n", *resume, err)
				os.Exit(1)
			}
			cfg.FromSnapshot = snap
		}
		var sink func(at sim.Cycles, ckpt []byte) error
		if *ckptEvery > 0 {
			sink = func(at sim.Cycles, ckpt []byte) error {
				// Write-then-rename so a crash mid-write never truncates the
				// previous good checkpoint.
				tmp := *ckptFile + ".tmp"
				if err := os.WriteFile(tmp, ckpt, 0o644); err != nil {
					return err
				}
				if err := os.Rename(tmp, *ckptFile); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "checkpoint: cycle %d -> %s (%d bytes)\n", at, *ckptFile, len(ckpt))
				return nil
			}
		}
		sum, stats, err := bench.RunEndurance(cfg, ec, sim.Cycles(*ckptEvery), sink)
		if err != nil {
			fmt.Fprintf(os.Stderr, "endurance: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(sum)
		fmt.Printf("E1 stats: cores=%d shards=%d workers=%d horizon=%d checkpoints=%d ckpt_bytes=%d resumed=%v hash=%016x\n",
			stats.Cores, stats.Shards, stats.Workers, stats.Horizon,
			stats.Checkpoints, stats.CheckpointBytes, stats.Resumed, stats.Hash)
		return
	}

	if *locks {
		res, stats, err := bench.RunLocks(bench.RunConfig{Seed: *seed, Quick: *quick},
			bench.DefaultLockConfig(*quick))
		if err != nil {
			fmt.Fprintf(os.Stderr, "locks: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res)
		for _, r := range stats.Rows {
			fmt.Printf("L1 stats: cell=%s ptids=%d slots=%d hold=%s acq=%d p50=%d p99=%d handoff=%.1f starve=%d spread=%d done=%d\n",
				r.Cell, r.Ptids, r.Slots, r.Hold, r.Acq, r.P50, r.P99,
				r.HandoffMean, r.StarveMax, r.Spread, r.DoneAt)
		}
		fmt.Printf("L1 shards: shards=1,2,4 workers=%d identical=true hash=%016x speedup=%.2f\n",
			stats.ShardWorkers, stats.ShardHash, stats.ShardSpeedup)
		return
	}

	if *serveFlag {
		sc := bench.DefaultServeConfig(*quick)
		if *workers > 0 {
			sc.Workers = *workers
		}
		if max := runtime.GOMAXPROCS(0); sc.Workers > max {
			sc.Workers = max
		}
		res, cells, err := bench.RunServe(bench.RunConfig{Seed: *seed, Quick: *quick}, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res)
		for _, c := range cells {
			fmt.Printf("SV1 stats: flavor=%s arrival=%s load=%.2f gen=%d done=%d refused=%d refused_conns=%d peak=%d p50=%d p99=%d p999=%d mean=%.1f goodput=%.2f lockw=%d busy=%d stalls=%d pump=%d dram=%d hash=%016x\n",
				c.Flavor, c.Arrival, c.Load, c.Generated, c.Completed, c.Refused,
				c.RefusedConns, c.OpenPeak, c.P50, c.P99, c.P999, c.MeanLat,
				c.GoodputKRPS, c.LockWaits, c.SendBusy, c.RingStalls, c.PumpStalls,
				c.DRAMStarts, c.Hash)
		}
		return
	}

	if *scale {
		sc := bench.DefaultScaleConfig(*quick)
		if *cores > 0 {
			sc.Cores = *cores
		}
		if *shards > 0 {
			sc.Shards = *shards
		}
		if *lookahead > 0 {
			sc.Lookahead = sim.Cycles(*lookahead)
		}
		if *workers > 0 {
			sc.Workers = *workers
		}
		// Same rule as -parallel: extra workers beyond real CPUs only add
		// scheduling overhead to a CPU-bound simulator, so clamp.
		if max := runtime.GOMAXPROCS(0); sc.Workers > max {
			sc.Workers = max
		}
		res, stats, err := bench.RunScale(bench.RunConfig{Seed: *seed, Quick: *quick}, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res)
		fmt.Printf("S1 stats: cores=%d shards=%d workers=%d serial_ms=%.3f parallel_ms=%.3f speedup=%.4f instrs_per_sec=%.0f hash=%016x\n",
			stats.Cores, stats.Shards, stats.Workers,
			stats.SerialWallSec*1e3, stats.ParallelWallSec*1e3,
			stats.Speedup, stats.InstrsPerSec, stats.Hash)
		return
	}

	var ids []string
	switch {
	case *all:
		ids = bench.IDs()
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := bench.RunConfig{Seed: *seed, Quick: *quick, Parallel: *parallel}
	switch *faults {
	case "":
	case "default":
		plan := faultinject.Default()
		cfg.Faults = &plan
	default:
		fmt.Fprintf(os.Stderr, "unknown -faults plan %q (want \"default\" or empty)\n", *faults)
		os.Exit(2)
	}
	if *traceOut != "" {
		cfg.Tracer = trace.New()
		if requestedParallel > 1 {
			fmt.Fprintln(os.Stderr, "note: -trace forces serial execution for a deterministic event order")
		}
	}
	failed := 0
	for _, o := range bench.RunAll(ids, cfg, *parallel) {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", o.ID, o.Err)
			failed++
			continue
		}
		switch *format {
		case "csv":
			for i, t := range o.Res.Tables {
				fmt.Printf("# %s table %d: %s\n%s\n", o.Res.ID, i+1, t.Title, t.CSV())
			}
		default:
			fmt.Println(o.Res)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := cfg.Tracer.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", cfg.Tracer.Len(), *traceOut)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}

	if failed > 0 {
		os.Exit(1)
	}
}
