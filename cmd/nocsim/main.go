// Command nocsim runs the reproduction experiments for "A Case Against
// (Most) Context Switches" (HotOS '21) and prints their paper-style tables.
//
// Usage:
//
//	nocsim -list
//	nocsim -exp F1            # one experiment
//	nocsim -exp F1,F7,T2      # several
//	nocsim -all               # the full suite (EXPERIMENTS.md input)
//	nocsim -all -quick        # reduced sample counts
//	nocsim -seed 7 -exp F7    # alternate workload seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nocs/internal/bench"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list experiments and exit")
		exp    = flag.String("exp", "", "comma-separated experiment IDs (e.g. F1,T2)")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "reduced sample counts")
		seed   = flag.Uint64("seed", bench.DefaultConfig().Seed, "workload RNG seed")
		format = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Printf("%-4s %s\n", id, e.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = bench.IDs()
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.RunConfig{Seed: *seed, Quick: *quick}
	failed := 0
	for _, id := range ids {
		res, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		switch *format {
		case "csv":
			for i, t := range res.Tables {
				fmt.Printf("# %s table %d: %s\n%s\n", res.ID, i+1, t.Title, t.CSV())
			}
		default:
			fmt.Println(res)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
